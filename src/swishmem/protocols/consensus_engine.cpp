#include "swishmem/protocols/consensus_engine.hpp"

#include <algorithm>

namespace swish::shm {
namespace {

/// Slots a coordinator re-sends per lagging replica per repair tick. Bounds
/// the burst when back-filling a freshly revived (empty) replica.
constexpr std::size_t kRepairChunk = 64;

/// Ballot = (group epoch << 32) | (coordinator id + 1): monotone across
/// epochs, unique per coordinator, and never 0 (0 is the "nothing promised"
/// floor). The low half names the ballot's owner for reply routing.
std::uint64_t make_ballot(std::uint32_t epoch, SwitchId self) noexcept {
  return (static_cast<std::uint64_t>(epoch) << 32) | (static_cast<std::uint64_t>(self) + 1);
}

SwitchId ballot_owner(std::uint64_t ballot) noexcept {
  return static_cast<SwitchId>((ballot & 0xffffffffULL) - 1);
}

}  // namespace

ConsensusEngine::ConsensusEngine(EngineHost& host) : ProtocolEngine(host) {
  telemetry::MetricsRegistry& reg = host_metrics();
  const std::string p = metric_prefix("con");
  stats_.writes_submitted = reg.counter(p + "writes_submitted");
  stats_.writes_committed = reg.counter(p + "writes_committed");
  stats_.writes_failed = reg.counter(p + "writes_failed");
  stats_.writes_rejected = reg.counter(p + "writes_rejected");
  stats_.forwards_sent = reg.counter(p + "forwards_sent");
  stats_.forward_retries = reg.counter(p + "forward_retries");
  stats_.accepts_seen = reg.counter(p + "accepts_seen");
  stats_.stale_ballot_drops = reg.counter(p + "stale_ballot_drops");
  stats_.slots_applied = reg.counter(p + "slots_applied");
  stats_.repair_resends = reg.counter(p + "repair_resends");
  stats_.lease_renewals = reg.counter(p + "lease_renewals");
  stats_.elections_started = reg.counter(p + "elections_started");
  stats_.elections_completed = reg.counter(p + "elections_completed");
  stats_.reads_local = reg.counter(p + "reads_local");
  stats_.reads_redirected = reg.counter(p + "reads_redirected");
  stats_.bytes = reg.counter(p + "bytes");
  stats_.commit_latency = reg.histogram(p + "commit_latency_ns");
}

void ConsensusEngine::add_space(const SpaceConfig& config, const std::vector<SwitchId>& replicas) {
  (void)replicas;  // the replica set comes from the controller's group pushes
  spaces_.emplace(config.id, std::make_unique<SroSpaceState>(host_.sw(), config));
}

bool ConsensusEngine::hosts_space(std::uint32_t space) const noexcept {
  return spaces_.contains(space);
}

const SroSpaceState* ConsensusEngine::space_state(std::uint32_t id) const {
  auto it = spaces_.find(id);
  return it == spaces_.end() ? nullptr : it->second.get();
}

void ConsensusEngine::start() {
  host_.every(host_.config().con_retry_timeout, [this]() { repair_tick(); });
  // Configuration bootstrap has run: adopt the initial coordinator (and run
  // the first election if that is us).
  on_config_update();
}

void ConsensusEngine::reset() {
  for (auto& [id, sp] : spaces_) sp->reset(host_.sw().control_plane().token());
  for (auto& [id, pw] : pending_writes_) pw.retry_timer.cancel();
  pending_writes_.clear();
  log_.clear();
  progress_.clear();
  promises_.clear();
  peer_applied_.clear();
  sequenced_.clear();
  promised_ballot_ = 0;
  committed_upto_ = 0;
  applied_upto_ = 0;
  lease_expiry_ = 0;
  lease_ballot_ = 0;
  coordinator_ = kInvalidNode;
  ballot_ = 0;
  electing_ = false;
  next_slot_ = 0;
  next_req_id_ = 0;
}

const std::vector<SwitchId>& ConsensusEngine::members() const noexcept {
  const auto& group = host_.group().members;
  return group.empty() ? host_.deployment() : group;
}

void ConsensusEngine::deliver(SwitchId dst, const pkt::SwishMessage& msg) {
  if (dst == host_.self()) {
    handle_message(msg);
    return;
  }
  stats_.bytes += host_.send(dst, msg);
}

std::vector<pkt::MsgType> ConsensusEngine::message_types() const {
  return {pkt::MsgType::kConForward, pkt::MsgType::kConPrepare, pkt::MsgType::kConPromise,
          pkt::MsgType::kConAccept, pkt::MsgType::kConAccepted, pkt::MsgType::kConLearn};
}

bool ConsensusEngine::handle_message(const pkt::SwishMessage& msg) {
  if (const auto* fwd = std::get_if<pkt::ConForward>(&msg)) {
    on_forward(*fwd);
    return true;
  }
  if (const auto* prep = std::get_if<pkt::ConPrepare>(&msg)) {
    on_prepare(*prep);
    return true;
  }
  if (const auto* prom = std::get_if<pkt::ConPromise>(&msg)) {
    on_promise(*prom);
    return true;
  }
  if (const auto* acc = std::get_if<pkt::ConAccept>(&msg)) {
    on_accept(*acc);
    return true;
  }
  if (const auto* accd = std::get_if<pkt::ConAccepted>(&msg)) {
    on_accepted(*accd);
    return true;
  }
  if (const auto* learn = std::get_if<pkt::ConLearn>(&msg)) {
    on_learn(*learn);
    return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Election (deterministic coordinator + Paxos phase 1)
// ---------------------------------------------------------------------------

void ConsensusEngine::on_config_update() {
  const auto& m = members();
  const SwitchId coord =
      m.empty() ? host_.self() : *std::min_element(m.begin(), m.end());
  // Any coordinator change (or epoch bump) invalidates follower leases: the
  // (re-)elected coordinator may commit without us until a message from its
  // new ballot lands here. The ballot comparison catches the same-lowest-id
  // epoch bump a plain coordinator-change test would miss.
  if (coord != coordinator_ || lease_ballot_ < make_ballot(epoch(), coord)) lease_expiry_ = 0;
  coordinator_ = coord;
  if (coord != host_.self()) {
    electing_ = false;
    promises_.clear();
    progress_.clear();  // deposed: the new coordinator re-drives open slots
    return;
  }
  const std::uint64_t b = make_ballot(epoch(), host_.self());
  if (!electing_ && ballot_ >= b && ballot_ != 0) return;  // already elected here
  ballot_ = b;
  begin_election();
}

void ConsensusEngine::begin_election() {
  ++stats_.elections_started;
  electing_ = true;
  promises_.clear();
  promises_.insert(host_.self());
  promised_ballot_ = std::max(promised_ballot_, ballot_);
  const telemetry::SpanContext tr = trace_root("con_election");
  ActiveTraceScope scope(host_, tr.sampled() ? tr : host_.active_trace());
  for (SwitchId m : members()) {
    if (m == host_.self()) continue;
    deliver(m, pkt::ConPrepare{epoch(), ballot_, host_.self()});
  }
  if (promises_.size() >= quorum()) finish_election();
}

void ConsensusEngine::on_prepare(const pkt::ConPrepare& msg) {
  if (msg.ballot < promised_ballot_) {
    ++stats_.stale_ballot_drops;
    return;
  }
  promised_ballot_ = msg.ballot;
  coordinator_ = msg.coordinator;
  lease_expiry_ = 0;  // the new coordinator has not served us yet
  pkt::ConPromise promise;
  promise.epoch = msg.epoch;
  promise.ballot = msg.ballot;
  promise.acceptor = host_.self();
  promise.applied_upto = applied_upto_;
  // Report every accepted slot above the applied prefix so in-flight
  // transactions survive the old coordinator (atomicity across failover).
  for (const auto& [slot, entry] : log_) {
    if (slot <= applied_upto_) continue;
    promise.entries.push_back({slot, entry.ballot, entry.writer, entry.req_id, entry.ops});
  }
  deliver(msg.coordinator, promise);
}

void ConsensusEngine::on_promise(const pkt::ConPromise& msg) {
  if (!electing_ || msg.ballot != ballot_) return;  // late or stale promise
  auto& pa = peer_applied_[msg.acceptor];
  pa = std::max(pa, msg.applied_upto);
  for (const auto& e : msg.entries) {
    auto it = log_.find(e.slot);
    if (it == log_.end() || it->second.ballot < e.ballot) {
      log_[e.slot] = LogEntry{e.ballot, e.writer, e.req_id, e.ops};
    }
  }
  promises_.insert(msg.acceptor);
  if (promises_.size() >= quorum()) finish_election();
}

void ConsensusEngine::finish_election() {
  electing_ = false;
  ++stats_.elections_completed;
  host_.sw().simulator().tracer().record(telemetry::kTraceFailover, host_.self(),
                                         "con_coordinator_elected", epoch());
  // Adopt the recovered log: the writer/req_id of every known slot is
  // sequenced (forward dedup across coordinator changes), and the proposal
  // cursor moves past everything seen. The dedup map is rebuilt from
  // scratch — a stale entry for a slot that another coordinator superseded
  // with a no-op fill would otherwise swallow the writer's retries as
  // duplicates of a transaction that can no longer commit.
  sequenced_.clear();
  for (const auto& [slot, entry] : log_) {
    next_slot_ = std::max(next_slot_, slot);
    if (entry.writer != kInvalidNode) sequenced_[{entry.writer, entry.req_id}] = slot;
  }
  // Slots inside the committed prefix are settled: phase 1's promise quorum
  // intersects every commit quorum, so the highest-ballot entry recovered
  // for such a slot IS the chosen value and is safe to apply here.
  for (auto it = log_.begin(); it != log_.end() && it->first <= committed_upto_; ++it) {
    it->second.committed = true;
  }
  // Re-propose accepted-but-uncommitted slots under our ballot; plug holes
  // with no-ops so the commit prefix can advance past them.
  for (std::uint64_t slot = committed_upto_ + 1; slot <= next_slot_; ++slot) {
    auto it = log_.find(slot);
    if (it == log_.end()) {
      log_[slot] = LogEntry{ballot_, host_.self(), 0, {}};  // no-op filler
    } else {
      it->second.ballot = ballot_;
    }
    auto& prog = progress_[slot];
    prog.accepted_by.clear();
    prog.accepted_by.insert(host_.self());
    prog.committed = false;
    send_accept(slot);
  }
  advance_commit();
  // Writes queued while the election ran (our own, or ones whose forward
  // landed before we were deposed elsewhere) get proposed now.
  std::vector<std::uint64_t> backlog;
  for (const auto& [req_id, pw] : pending_writes_) {
    if (!sequenced_.contains({host_.self(), req_id})) backlog.push_back(req_id);
  }
  for (std::uint64_t req_id : backlog) {
    auto it = pending_writes_.find(req_id);
    if (it == pending_writes_.end()) continue;
    ActiveTraceScope scope(host_, it->second.trace);
    propose(LogEntry{ballot_, host_.self(), req_id, it->second.ops});
  }
}

// ---------------------------------------------------------------------------
// Writer side
// ---------------------------------------------------------------------------

void ConsensusEngine::write(std::vector<pkt::WriteOp> ops, pkt::Packet output,
                            WriteRelease release) {
  ++stats_.writes_submitted;
  if (ops.empty()) {
    if (release) release(std::move(output));
    return;
  }
  if (pending_writes_.size() >= host_.config().con_queue_limit) {
    ++stats_.writes_rejected;
    host_.report_drop(telemetry::DropReason::kConQueueOverflow, ops.front().key);
    return;
  }
  const std::uint64_t req_id = mint_req_id();
  PendingWrite pw;
  pw.submit_time = host_.sw().simulator().now();
  pw.trace = trace_origin("con_write", ops.front().space, ops.front().key);
  pw.ops = std::move(ops);
  pw.output = std::move(output);
  pw.release = std::move(release);
  const telemetry::SpanContext tr = pw.trace;
  pending_writes_.emplace(req_id, std::move(pw));
  ActiveTraceScope scope(host_, tr);
  if (is_coordinator() && !electing_) {
    // NOTE: a single-replica group commits and applies synchronously here,
    // which releases (and erases) the pending write before this returns
    // (making the arm below a no-op).
    propose(LogEntry{ballot_, host_.self(),  req_id,
                     pending_writes_.at(req_id).ops});
    // Coordinator-path writes need the retry timer too: if we are deposed
    // with the slot in flight and the successor supersedes it (no-op fill),
    // the retry re-routes the write to the new coordinator — or fails it
    // after the budget — instead of stranding it (and its buffered output
    // packet) forever.
    arm_forward_retry(req_id);
    return;
  }
  ++stats_.forwards_sent;
  send_forward(req_id);
  arm_forward_retry(req_id);
}

void ConsensusEngine::send_forward(std::uint64_t req_id) {
  auto it = pending_writes_.find(req_id);
  if (it == pending_writes_.end()) return;
  if (is_coordinator()) {
    // A coordinator change landed this write on us: propose instead of
    // forwarding (sequenced_ guards against double-proposal on retries).
    if (!electing_ && !sequenced_.contains({host_.self(), req_id})) {
      propose(LogEntry{ballot_, host_.self(), req_id, it->second.ops});
    }
    return;
  }
  if (coordinator_ == kInvalidNode) return;  // retry after the config push
  deliver(coordinator_, pkt::ConForward{epoch(), host_.self(), req_id, it->second.ops});
}

void ConsensusEngine::arm_forward_retry(std::uint64_t req_id) {
  auto it = pending_writes_.find(req_id);
  if (it == pending_writes_.end()) return;
  it->second.retry_timer = host_.sw().control_plane().schedule_after(
      host_.config().con_retry_timeout, [this, req_id]() {
        auto pit = pending_writes_.find(req_id);
        if (pit == pending_writes_.end()) return;  // applied and released
        if (++pit->second.retries > host_.config().con_max_retries) {
          // The forward/propose budget ran dry: no quorum (or coordinator)
          // was reachable within the retry window.
          ++stats_.writes_failed;
          host_.report_drop(telemetry::DropReason::kQuorumUnreachable, req_id);
          pending_writes_.erase(pit);
          return;
        }
        ++stats_.forward_retries;
        // Retries recompute the coordinator (election survival) and stay on
        // the original causal chain.
        ActiveTraceScope scope(host_, pit->second.trace);
        send_forward(req_id);
        arm_forward_retry(req_id);
      });
}

void ConsensusEngine::release_write(SwitchId writer, std::uint64_t req_id) {
  if (writer != host_.self()) return;
  auto it = pending_writes_.find(req_id);
  if (it == pending_writes_.end()) return;
  it->second.retry_timer.cancel();
  ++stats_.writes_committed;
  stats_.commit_latency.add(
      static_cast<std::uint64_t>(host_.sw().simulator().now() - it->second.submit_time));
  if (!it->second.ops.empty()) {
    trace_point("con_commit_ack", it->second.ops.front().space, it->second.ops.front().key);
  }
  auto release = std::move(it->second.release);
  auto output = std::move(it->second.output);
  pending_writes_.erase(it);
  if (release) {
    // Like the chain writer: the CP re-injects the buffered output packet.
    host_.sw().control_plane().submit(
        [release = std::move(release), output = std::move(output)]() mutable {
          release(std::move(output));
        });
  }
}

// ---------------------------------------------------------------------------
// Coordinator side
// ---------------------------------------------------------------------------

void ConsensusEngine::on_forward(const pkt::ConForward& msg) {
  if (!is_coordinator() || electing_) return;  // the writer's retry re-routes
  if (msg.epoch != epoch()) return;            // stale view; retry carries the new one
  auto sit = sequenced_.find({msg.writer, msg.req_id});
  if (sit != sequenced_.end()) {
    // Duplicate of a transaction already sequenced: if committed, the repair
    // loop (peer_applied_) re-delivers the learn; nothing to do here.
    return;
  }
  propose(LogEntry{ballot_, msg.writer, msg.req_id, msg.ops});
}

void ConsensusEngine::propose(LogEntry entry) {
  const std::uint64_t slot = ++next_slot_;
  if (sequenced_.size() > 65536) sequenced_.clear();  // blunt dedup bound
  if (entry.writer != kInvalidNode) sequenced_[{entry.writer, entry.req_id}] = slot;
  entry.ballot = ballot_;
  log_[slot] = std::move(entry);
  promised_ballot_ = std::max(promised_ballot_, ballot_);
  auto& prog = progress_[slot];
  prog.accepted_by.insert(host_.self());  // the coordinator accepts its own proposal
  if (!log_[slot].ops.empty()) {
    trace_point("con_propose", log_[slot].ops.front().space, log_[slot].ops.front().key);
  }
  send_accept(slot);
  if (quorum() <= 1) advance_commit();  // single-replica group: instant commit
}

void ConsensusEngine::send_accept(std::uint64_t slot) {
  auto lit = log_.find(slot);
  if (lit == log_.end()) return;
  auto pit = progress_.find(slot);
  pkt::ConAccept accept{epoch(),          ballot_, slot, committed_upto_,
                        lit->second.writer, lit->second.req_id, lit->second.ops};
  for (SwitchId m : members()) {
    if (m == host_.self()) continue;
    if (pit != progress_.end() && pit->second.accepted_by.contains(m)) continue;
    deliver(m, accept);
  }
}

void ConsensusEngine::on_accepted(const pkt::ConAccepted& msg) {
  if (!is_coordinator() || msg.ballot != ballot_) return;
  auto& pa = peer_applied_[msg.acceptor];
  pa = std::max(pa, msg.applied_upto);
  auto it = progress_.find(msg.slot);
  if (it == progress_.end()) return;  // already committed and retired
  it->second.accepted_by.insert(msg.acceptor);
  if (!it->second.committed && it->second.accepted_by.size() >= quorum()) {
    it->second.committed = true;
    advance_commit();
  }
}

void ConsensusEngine::advance_commit() {
  const std::uint64_t before = committed_upto_;
  while (true) {
    auto it = progress_.find(committed_upto_ + 1);
    if (it == progress_.end()) break;
    if (!it->second.committed && it->second.accepted_by.size() < quorum()) break;
    it->second.committed = true;
    ++committed_upto_;
    log_.at(committed_upto_).committed = true;  // quorum reached: value chosen
  }
  if (committed_upto_ == before) return;
  // Newly committed slots: lag records open at the origin, learners are
  // notified, and the recovery tap (if a stream is active) sees the commit.
  for (std::uint64_t slot = before + 1; slot <= committed_upto_; ++slot) {
    const LogEntry& entry = log_.at(slot);
    if (obs_ != nullptr) {
      const auto expected = static_cast<std::uint32_t>(members().size());
      for (const auto& op : entry.ops) {
        obs_->on_commit(op.space, op.key, slot, host_.self(), expected);
      }
    }
    if (!entry.ops.empty()) {
      trace_point("con_commit", entry.ops.front().space, entry.ops.front().key);
      host_.recovery_tap(entry.ops, std::vector<SeqNum>(entry.ops.size(), slot));
    }
    pkt::ConLearn learn{epoch(),      ballot_,       slot, committed_upto_,
                        entry.writer, entry.req_id, entry.ops};
    for (SwitchId m : members()) {
      if (m == host_.self()) continue;
      deliver(m, learn);
    }
    progress_.erase(slot);
  }
  apply_committed_upto(committed_upto_);
}

void ConsensusEngine::repair_tick() {
  if (electing_) {
    // Re-drive lost prepares until a quorum promises.
    for (SwitchId m : members()) {
      if (m == host_.self() || promises_.contains(m)) continue;
      deliver(m, pkt::ConPrepare{epoch(), ballot_, host_.self()});
    }
    return;
  }
  if (!is_coordinator()) return;
  // Re-drive open proposals that have not reached a quorum yet.
  for (auto& [slot, prog] : progress_) {
    if (!prog.committed) send_accept(slot);
  }
  // Back-fill replicas whose applied prefix lags the commit prefix (lost
  // learns, or a revived switch that boots with an empty log). Caught-up
  // peers get the newest committed learn re-sent as a lease heartbeat: a
  // learn receipt refreshes the replica's read lease, so local reads keep
  // their bounded-staleness guarantee through idle periods (the re-learn of
  // an applied slot is a no-op on their state).
  for (SwitchId m : members()) {
    if (m == host_.self()) continue;
    const std::uint64_t pa = peer_applied_[m];
    if (pa >= committed_upto_) {
      auto lit = log_.find(committed_upto_);
      if (host_.config().con_lease != 0 && lit != log_.end()) {
        ++stats_.lease_renewals;
        deliver(m, pkt::ConLearn{epoch(), ballot_, committed_upto_, committed_upto_,
                                 lit->second.writer, lit->second.req_id, lit->second.ops});
      }
      continue;
    }
    const std::uint64_t end = std::min(committed_upto_, pa + kRepairChunk);
    for (std::uint64_t slot = pa + 1; slot <= end; ++slot) {
      auto lit = log_.find(slot);
      if (lit == log_.end()) continue;
      ++stats_.repair_resends;
      deliver(m, pkt::ConLearn{epoch(), ballot_, slot, committed_upto_,
                               lit->second.writer, lit->second.req_id, lit->second.ops});
    }
  }
}

// ---------------------------------------------------------------------------
// Acceptor / learner side
// ---------------------------------------------------------------------------

void ConsensusEngine::refresh_lease(std::uint64_t ballot) {
  const TimeNs lease = host_.config().con_lease;
  if (lease == 0) return;
  lease_expiry_ = host_.sw().simulator().now() + lease;
  lease_ballot_ = std::max(lease_ballot_, ballot);
}

bool ConsensusEngine::lease_valid() const {
  return lease_expiry_ != 0 && host_.sw().simulator().now() < lease_expiry_;
}

void ConsensusEngine::on_accept(const pkt::ConAccept& msg) {
  ++stats_.accepts_seen;
  if (msg.ballot < promised_ballot_) {
    ++stats_.stale_ballot_drops;
    return;
  }
  promised_ballot_ = msg.ballot;
  auto it = log_.find(msg.slot);
  if (it == log_.end() || it->second.ballot <= msg.ballot) {
    // An overwrite of an already-chosen entry can only come from a ballot >=
    // the committing one, where the choice invariant forces the same value:
    // the committed bit survives the overwrite.
    const bool chosen = it != log_.end() && it->second.committed;
    log_[msg.slot] = LogEntry{msg.ballot, msg.writer, msg.req_id, msg.ops, chosen};
  }
  committed_upto_ = std::max(committed_upto_, msg.commit_upto);
  mark_committed(msg.commit_upto, msg.ballot);
  apply_committed_upto(committed_upto_);
  refresh_lease(msg.ballot);
  deliver(ballot_owner(msg.ballot),
          pkt::ConAccepted{msg.epoch, msg.ballot, msg.slot, host_.self(), applied_upto_});
}

void ConsensusEngine::on_learn(const pkt::ConLearn& msg) {
  if (msg.ballot < promised_ballot_) {
    ++stats_.stale_ballot_drops;
    return;
  }
  promised_ballot_ = msg.ballot;
  auto it = log_.find(msg.slot);
  if (it == log_.end() || it->second.ballot <= msg.ballot) {
    // A learn carries the chosen value for the slot it names (commitment is
    // permanent), so the fresh entry is committed outright.
    log_[msg.slot] = LogEntry{msg.ballot, msg.writer, msg.req_id, msg.ops, true};
  } else {
    // Our entry outranks the learn's ballot; for a chosen slot any
    // higher-ballot accept must carry the same value, so it is chosen too.
    it->second.committed = true;
  }
  // A learn means the slot is committed even if commit_upto lags behind it.
  committed_upto_ = std::max({committed_upto_, msg.commit_upto, msg.slot});
  mark_committed(msg.commit_upto, msg.ballot);
  apply_committed_upto(committed_upto_);
  refresh_lease(msg.ballot);
  // The learn-ack: reports our applied prefix so the coordinator's repair
  // loop knows when to stop re-sending.
  deliver(ballot_owner(msg.ballot),
          pkt::ConAccepted{msg.epoch, msg.ballot, msg.slot, host_.self(), applied_upto_});
}

void ConsensusEngine::mark_committed(std::uint64_t upto, std::uint64_t ballot) {
  // A commit-prefix proof (commit_upto) says slots <= upto are committed,
  // NOT that our local entry at each of those slots is the chosen value: a
  // minority accept from a dead coordinator can sit at a slot its successor
  // filled differently. Only an entry accepted under at least the proving
  // ballot is safe — the Paxos choice invariant forces it to equal the
  // chosen value. Older entries stay unchosen and read as gaps until the
  // repair loop re-learns them.
  for (auto it = log_.upper_bound(applied_upto_); it != log_.end() && it->first <= upto; ++it) {
    if (it->second.ballot >= ballot) it->second.committed = true;
  }
}

void ConsensusEngine::apply_committed_upto(std::uint64_t upto) {
  while (applied_upto_ < upto) {
    auto it = log_.find(applied_upto_ + 1);
    // A missing entry, or one not yet known chosen, is a gap: the repair
    // loop back-fills it with a learn before anything past it applies.
    if (it == log_.end() || !it->second.committed) return;
    apply_entry(applied_upto_ + 1, it->second);
    ++applied_upto_;
  }
}

void ConsensusEngine::apply_entry(std::uint64_t slot, const LogEntry& entry) {
  ++stats_.slots_applied;
  for (const auto& op : entry.ops) {
    auto sit = spaces_.find(op.space);
    if (sit == spaces_.end()) continue;
    SroSpaceState& sp = *sit->second;
    sp.apply(op.key, op.value, host_.sw().control_plane().token());
    // Guard seq = slot: snapshots carry the log position, so a recovery
    // stream replays into the same ordering domain.
    if (slot > sp.key_guard_seq(op.key)) sp.set_key_guard_seq(op.key, slot);
    if (obs_ != nullptr) obs_->on_apply(op.space, op.key, coordinator_, slot, host_.self());
  }
  if (!entry.ops.empty()) {
    trace_point("con_apply", entry.ops.front().space, entry.ops.front().key);
  }
  release_write(entry.writer, entry.req_id);
}

// ---------------------------------------------------------------------------
// Reads (coordinator-authoritative with follower leases)
// ---------------------------------------------------------------------------

ReadStatus ConsensusEngine::read(pisa::PacketContext* ctx, std::uint32_t space,
                                 std::uint64_t key, std::uint64_t& value) {
  auto it = spaces_.find(space);
  if (it == spaces_.end()) return ReadStatus::kMiss;
  const bool local_ok = is_coordinator()        // applied prefix is authoritative
                        || host_.authoritative()  // serving a redirect already
                        || lease_valid()          // lease-fresh: bounded staleness
                        || members().size() <= 1;
  if (!local_ok) {
    if (coordinator_ == kInvalidNode || ctx == nullptr) {
      // No coordinator to ask (or a caller that cannot be redirected): serve
      // the local copy rather than dropping the packet.
    } else {
      ++stats_.reads_redirected;
      stats_.bytes +=
          host_.send(coordinator_, pkt::ReadRedirect{host_.self(), ctx->packet.bytes()});
      return ReadStatus::kRedirected;
    }
  }
  ++stats_.reads_local;
  if (obs_ != nullptr) obs_->on_read(space, key, host_.self());
  auto v = it->second->read(key);
  if (!v) return ReadStatus::kMiss;
  value = *v;
  return ReadStatus::kOk;
}

std::optional<std::uint64_t> ConsensusEngine::read_lpm(std::uint32_t space, std::uint64_t key) {
  auto it = spaces_.find(space);
  if (it == spaces_.end()) return std::nullopt;
  ++stats_.reads_local;
  return it->second->read_lpm(key);
}

// ---------------------------------------------------------------------------
// Recovery (§6.3)
// ---------------------------------------------------------------------------

void ConsensusEngine::collect_snapshot(std::optional<std::uint32_t> space_filter,
                                       std::vector<SnapshotOp>& out) const {
  std::vector<std::uint32_t> ids;
  for (const auto& [id, sp] : spaces_) {
    if (space_filter && id != *space_filter) continue;
    ids.push_back(id);
  }
  std::sort(ids.begin(), ids.end());
  for (const std::uint32_t id : ids) {
    const SroSpaceState& sp = *spaces_.at(id);
    for (const auto& entry : sp.snapshot()) out.push_back({entry.op, entry.seq});
  }
}

std::unique_ptr<SnapshotSource> ConsensusEngine::snapshot_source(
    std::optional<std::uint32_t> space_filter) {
  std::vector<std::uint32_t> ids;
  for (const auto& [id, sp] : spaces_) {
    if (space_filter && id != *space_filter) continue;
    ids.push_back(id);
  }
  std::sort(ids.begin(), ids.end());
  std::vector<std::unique_ptr<SnapshotSource>> parts;
  for (const std::uint32_t id : ids) {
    SroSpaceState& sp = *spaces_.at(id);
    if (sp.sparse_store() != nullptr) {
      parts.push_back(make_pinned_source(
          sp.pin_snapshot(), [id](const store::Entry& e, SnapshotOp& op) {
            op = {pkt::WriteOp{id, e.key, e.value}, static_cast<SeqNum>(e.aux)};
            return true;  // tombstones stream too — they carry deletions
          }));
    } else {
      std::vector<SnapshotOp> ops;
      for (const auto& entry : sp.snapshot()) ops.push_back({entry.op, entry.seq});
      parts.push_back(make_vector_source(std::move(ops)));
    }
  }
  return make_chained_source(std::move(parts));
}

void ConsensusEngine::apply_recovery_op(const pkt::WriteOp& op, SeqNum seq) {
  auto sit = spaces_.find(op.space);
  if (sit == spaces_.end()) return;
  SroSpaceState& sp = *sit->second;
  sp.apply(op.key, op.value, host_.sw().control_plane().token());
  if (seq > sp.key_guard_seq(op.key)) sp.set_key_guard_seq(op.key, seq);
  // The snapshot is a consistent cut of the donor's applied prefix; adopting
  // the highest replayed slot as our own applied prefix keeps the
  // coordinator's repair loop from re-sending the whole history (re-applied
  // absolute values would be idempotent, but the bandwidth is wasted).
  applied_upto_ = std::max(applied_upto_, seq);
  committed_upto_ = std::max(committed_upto_, seq);
}

std::vector<ProtocolEngine::StatRow> ConsensusEngine::stat_rows() const {
  return {
      {"writes_submitted", stats_.writes_submitted},
      {"writes_committed", stats_.writes_committed},
      {"writes_failed", stats_.writes_failed},
      {"writes_rejected", stats_.writes_rejected},
      {"forwards_sent", stats_.forwards_sent},
      {"forward_retries", stats_.forward_retries},
      {"accepts_seen", stats_.accepts_seen},
      {"stale_ballot_drops", stats_.stale_ballot_drops},
      {"slots_applied", stats_.slots_applied},
      {"repair_resends", stats_.repair_resends},
      {"lease_renewals", stats_.lease_renewals},
      {"elections_started", stats_.elections_started},
      {"elections_completed", stats_.elections_completed},
      {"reads_local", stats_.reads_local},
      {"reads_redirected", stats_.reads_redirected},
      {"commit_p99_ns", stats_.commit_latency.p99()},
      {"bytes", stats_.bytes},
  };
}

}  // namespace swish::shm
