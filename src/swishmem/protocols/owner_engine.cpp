#include "swishmem/protocols/owner_engine.hpp"

#include <algorithm>
#include <map>

namespace swish::shm {

OwnerEngine::OwnerEngine(EngineHost& host) : ProtocolEngine(host) {
  telemetry::MetricsRegistry& reg = host_metrics();
  const std::string p = metric_prefix("own");
  stats_.reads = reg.counter(p + "reads");
  stats_.local_writes = reg.counter(p + "local_writes");
  stats_.acquisitions_started = reg.counter(p + "acquisitions_started");
  stats_.acquisitions_completed = reg.counter(p + "acquisitions_completed");
  stats_.acquisitions_failed = reg.counter(p + "acquisitions_failed");
  stats_.acquisition_retries = reg.counter(p + "acquisition_retries");
  stats_.revokes_served = reg.counter(p + "revokes_served");
  stats_.grants_issued = reg.counter(p + "grants_issued");
  stats_.queue_rejected = reg.counter(p + "queue_rejected");
  stats_.backup_entries_sent = reg.counter(p + "backup_entries_sent");
  stats_.backup_entries_merged = reg.counter(p + "backup_entries_merged");
  stats_.bytes = reg.counter(p + "bytes");
}

void OwnerEngine::add_space(const SpaceConfig& config, const std::vector<SwitchId>& replicas) {
  (void)replicas;  // OWN spaces span the deployment; homes come from members()
  spaces_.emplace(config.id, std::make_unique<OwnSpaceState>(host_.sw(), config));
}

bool OwnerEngine::hosts_space(std::uint32_t space) const noexcept {
  return spaces_.contains(space);
}

void OwnerEngine::start() {
  host_.every(host_.config().own_backup_interval, [this]() { backup_flush(); });
}

void OwnerEngine::reset() {
  for (auto& [id, sp] : spaces_) sp->reset();
  for (auto& [key, pa] : pending_acquires_) pa.retry_timer.cancel();
  pending_acquires_.clear();
  // Home-side pending grants carry no timers (the requester's retry re-drives
  // a lost migration), so clearing the map is the whole cleanup.
  pending_grants_.clear();
  // A replacement switch boots empty: the req_id counter restarts too. Stale
  // grants addressed to the pre-failure incarnation are rejected by the
  // req_id guard on the (freshly emptied) pending_acquires_ map.
  next_req_id_ = 0;
}

void OwnerEngine::on_config_update() {
  // Home side: reclaim keys whose recorded owner left the live set — the next
  // acquisition is granted from this home's backup copy (§6.3 failover; the
  // un-flushed tail of the dead owner's writes is the protocol's loss window).
  const auto& live = members();
  for (auto& [id, sp] : spaces_) {
    for (std::uint64_t slot : sp->dir_slots_owned_outside(live)) {
      sp->clear_dir_owner(slot);
    }
  }
  // In-flight revokes may reference dead switches; drop them and let the
  // requesters' retries re-walk the (repaired) directory.
  pending_grants_.clear();
  // Owner side: a group change can move a key's home to a replica whose
  // directory has never heard of us. Proactively re-claim everything we own
  // so the new homes converge in one round trip instead of one backup period.
  flush_claims();
}

std::vector<pkt::MsgType> OwnerEngine::message_types() const {
  return {pkt::MsgType::kOwnRequest, pkt::MsgType::kOwnGrant, pkt::MsgType::kOwnUpdate};
}

bool OwnerEngine::handle_message(const pkt::SwishMessage& msg) {
  if (const auto* req = std::get_if<pkt::OwnRequest>(&msg)) {
    if (!spaces_.contains(req->space)) return false;
    on_own_request(*req);
    return true;
  }
  if (const auto* grant = std::get_if<pkt::OwnGrant>(&msg)) {
    if (!spaces_.contains(grant->space)) return false;
    on_own_grant(*grant);
    return true;
  }
  if (const auto* update = std::get_if<pkt::OwnUpdate>(&msg)) {
    if (update->entries.empty() || !spaces_.contains(update->entries.front().space)) {
      return false;
    }
    on_own_update(*update);
    return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Placement
// ---------------------------------------------------------------------------

const std::vector<SwitchId>& OwnerEngine::members() const noexcept {
  const auto& group = host_.group().members;
  return group.empty() ? host_.deployment() : group;
}

SwitchId OwnerEngine::home_of(std::uint32_t space, std::uint64_t key) const {
  const auto& m = members();
  if (m.empty()) return host_.self();
  const std::uint64_t mix =
      own_mix64(key ^ (static_cast<std::uint64_t>(space) * 0x9e3779b97f4a7c15ULL));
  return m[mix % m.size()];
}

bool OwnerEngine::owns(std::uint32_t space, std::uint64_t key) const {
  auto it = spaces_.find(space);
  return it != spaces_.end() && it->second->owned(key);
}

void OwnerEngine::deliver(SwitchId dst, const pkt::SwishMessage& msg) {
  if (dst == host_.self()) {
    // A switch can be requester, home, and owner in any combination; local
    // hops skip the wire.
    if (const auto* req = std::get_if<pkt::OwnRequest>(&msg)) {
      on_own_request(*req);
    } else if (const auto* grant = std::get_if<pkt::OwnGrant>(&msg)) {
      on_own_grant(*grant);
    } else if (const auto* update = std::get_if<pkt::OwnUpdate>(&msg)) {
      on_own_update(*update);
    }
    return;
  }
  stats_.bytes += host_.send(dst, msg);
}

// ---------------------------------------------------------------------------
// Datapath
// ---------------------------------------------------------------------------

ReadStatus OwnerEngine::read(pisa::PacketContext* ctx, std::uint32_t space, std::uint64_t key,
                             std::uint64_t& value) {
  (void)ctx;  // reads never redirect: owner-fresh locally, backup-stale remotely
  auto it = spaces_.find(space);
  if (it == spaces_.end()) return ReadStatus::kMiss;
  ++stats_.reads;
  if (obs_ != nullptr) obs_->on_read(space, it->second->slot(key), host_.self());
  value = it->second->value(key);
  return ReadStatus::kOk;
}

void OwnerEngine::write(std::vector<pkt::WriteOp> ops, pkt::Packet output, WriteRelease release) {
  if (ops.empty()) {
    if (release) release(std::move(output));
    return;
  }
  // The output releases when the last op of the batch has applied (each op
  // may wait on its own key's ownership migration).
  struct Batch {
    std::size_t remaining;
    pkt::Packet output;
    WriteRelease release;
  };
  auto batch = std::make_shared<Batch>();
  batch->remaining = ops.size();
  batch->output = std::move(output);
  batch->release = std::move(release);
  for (const auto& op : ops) {
    QueuedOp q;
    q.is_update = false;
    q.value = op.value;
    q.completion = [batch]() {
      if (--batch->remaining == 0 && batch->release) {
        batch->release(std::move(batch->output));
      }
    };
    apply_or_acquire(op.space, op.key, std::move(q));
  }
}

bool OwnerEngine::update(std::uint32_t space, std::uint64_t key, std::int64_t delta,
                         UpdateDone done) {
  if (!spaces_.contains(space)) return false;
  QueuedOp q;
  q.is_update = true;
  q.delta = delta;
  q.done = std::move(done);
  apply_or_acquire(space, key, std::move(q));
  return true;
}

void OwnerEngine::apply_owned(OwnSpaceState& st, std::uint32_t space, std::uint64_t key,
                              QueuedOp& op) {
  ++stats_.local_writes;
  trace_origin("own_write", space, key);
  if (op.is_update) {
    const std::uint64_t result = st.value(key) + static_cast<std::uint64_t>(op.delta);
    st.owner_write(key, result);
    if (op.done) op.done(result);
  } else {
    st.owner_write(key, op.value);
    if (op.completion) op.completion();
  }
  // OWN propagates owner writes to exactly one replica — the key's home —
  // via the periodic backup flush (or the grant relinquish path). Self-homed
  // keys have no remote copy to lag behind.
  if (obs_ != nullptr && obs_->enabled() && home_of(space, key) != host_.self()) {
    obs_->on_commit(space, key, st.version(key), host_.self(), 1);
  }
}

void OwnerEngine::apply_or_acquire(std::uint32_t space, std::uint64_t key, QueuedOp op) {
  auto it = spaces_.find(space);
  if (it == spaces_.end()) return;
  OwnSpaceState& st = *it->second;
  const std::uint64_t slot = st.slot(key);  // ownership is slot-granular
  if (st.owned(slot)) {
    apply_owned(st, space, slot, op);
    return;
  }
  const KeyRef ref{space, slot};
  auto pit = pending_acquires_.find(ref);
  if (pit == pending_acquires_.end()) {
    begin_acquire(space, slot);
    // When this switch is its own home (or the whole path is local) the grant
    // installs synchronously inside begin_acquire.
    if (st.owned(slot)) {
      apply_owned(st, space, slot, op);
      return;
    }
    pit = pending_acquires_.find(ref);
    if (pit == pending_acquires_.end()) return;  // acquisition not startable
  }
  if (pit->second.queue.size() >= host_.config().own_queue_limit) {
    ++stats_.queue_rejected;
    host_.report_drop(telemetry::DropReason::kOwnQueueOverflow, slot);
    return;  // dropped; the op's callbacks never fire
  }
  pit->second.queue.push_back(std::move(op));
}

// ---------------------------------------------------------------------------
// Acquisition (requester side)
// ---------------------------------------------------------------------------

void OwnerEngine::begin_acquire(std::uint32_t space, std::uint64_t slot) {
  ++stats_.acquisitions_started;
  // Mask the counter to its 40-bit field so a (pathologically) long-lived
  // switch can never wrap the counter into the switch-id bits and mint
  // req_ids that collide with another switch's.
  const std::uint64_t req_id = (static_cast<std::uint64_t>(host_.self()) << 40) |
                               (++next_req_id_ & ((1ULL << 40) - 1));
  const telemetry::SpanContext tr = trace_origin("own_acquire", space, slot);
  PendingAcquire pa;
  pa.req_id = req_id;
  pa.trace = tr;
  pending_acquires_.emplace(KeyRef{space, slot}, std::move(pa));
  ActiveTraceScope scope(host_, tr);
  deliver(home_of(space, slot),
          pkt::OwnRequest{space, slot, host_.self(), req_id, /*revoke=*/false});
  arm_acquire_retry(space, slot, req_id);
}

void OwnerEngine::arm_acquire_retry(std::uint32_t space, std::uint64_t slot,
                                    std::uint64_t req_id) {
  auto it = pending_acquires_.find(KeyRef{space, slot});
  if (it == pending_acquires_.end()) return;
  it->second.retry_timer = host_.sw().control_plane().schedule_after(
      host_.config().write_retry_timeout, [this, space, slot, req_id]() {
        auto pit = pending_acquires_.find(KeyRef{space, slot});
        if (pit == pending_acquires_.end() || pit->second.req_id != req_id) return;
        if (++pit->second.retries > host_.config().max_write_retries) {
          ++stats_.acquisitions_failed;
          host_.report_drop(telemetry::DropReason::kWriteRetriesExhausted, slot);
          pending_acquires_.erase(pit);  // queued ops dropped, callbacks never fire
          return;
        }
        ++stats_.acquisition_retries;
        // Retries reuse the SAME req_id (idempotent at home and owner) but
        // recompute the home, so they survive a failover-driven re-homing.
        // Re-entering the original acquisition trace (plus the runtime's
        // req_id-keyed send-span cache) keeps retransmits from double-counting.
        ActiveTraceScope scope(host_, pit->second.trace);
        deliver(home_of(space, slot),
                pkt::OwnRequest{space, slot, host_.self(), req_id, /*revoke=*/false});
        arm_acquire_retry(space, slot, req_id);
      });
}

void OwnerEngine::install_grant(const pkt::OwnGrant& msg) {
  auto sit = spaces_.find(msg.space);
  if (sit == spaces_.end()) return;
  OwnSpaceState& st = *sit->second;
  auto pit = pending_acquires_.find(KeyRef{msg.space, msg.key});
  if (pit == pending_acquires_.end() || pit->second.req_id != msg.req_id) {
    return;  // stale grant (e.g. for an acquisition that already timed out):
             // installing it could create a second owner, so drop it
  }
  if (msg.version >= st.version(msg.key)) st.store(msg.key, msg.value, msg.version);
  st.set_owned(msg.key, true);
  ++stats_.acquisitions_completed;
  host_.sw().simulator().tracer().record(telemetry::kTraceMigration, host_.self(),
                                         "own_acquired", msg.space, msg.key);
  trace_point("own_acquired", msg.space, msg.key);
  pit->second.retry_timer.cancel();
  auto queue = std::move(pit->second.queue);
  pending_acquires_.erase(pit);
  for (auto& op : queue) apply_owned(st, msg.space, msg.key, op);
}

// ---------------------------------------------------------------------------
// Home directory + owner revocation
// ---------------------------------------------------------------------------

void OwnerEngine::grant_from_backup(OwnSpaceState& st, std::uint32_t space, std::uint64_t slot,
                                    SwitchId requester, std::uint64_t req_id) {
  st.set_dir_owner(slot, requester);
  ++stats_.grants_issued;
  deliver(requester,
          pkt::OwnGrant{space, slot, requester, req_id, st.value(slot), st.version(slot)});
}

void OwnerEngine::on_own_request(const pkt::OwnRequest& msg) {
  auto sit = spaces_.find(msg.space);
  if (sit == spaces_.end()) return;
  OwnSpaceState& st = *sit->second;

  if (msg.revoke) {
    // Owner side: relinquish, keeping the (now read-only, stale-allowed) copy,
    // and ship the authoritative value back through the home. A duplicate
    // revoke after relinquishing re-sends the same state; the home's req_id
    // check makes that harmless.
    if (st.owned(msg.key)) {
      st.set_owned(msg.key, false);
      ++stats_.revokes_served;
      host_.sw().simulator().tracer().record(telemetry::kTraceMigration, host_.self(),
                                             "own_revoked", msg.space, msg.key);
      trace_point("own_revoke", msg.space, msg.key);
    }
    deliver(home_of(msg.space, msg.key),
            pkt::OwnGrant{msg.space, msg.key, msg.requester, msg.req_id, st.value(msg.key),
                          st.version(msg.key)});
    return;
  }

  // Home side. Ignore requests that landed on a stale home; the requester's
  // retry recomputes placement from the next group config.
  if (home_of(msg.space, msg.key) != host_.self()) return;

  const SwitchId current = st.dir_owner(msg.key);
  if (current == kInvalidNode || current == msg.requester) {
    // Unowned (or a duplicate of a request we already granted): grant from
    // the backup copy.
    grant_from_backup(st, msg.space, msg.key, msg.requester, msg.req_id);
    return;
  }
  const KeyRef ref{msg.space, msg.key};
  auto git = pending_grants_.find(ref);
  if (git != pending_grants_.end() && git->second.req_id != msg.req_id) {
    // A migration for another requester is already in flight: first come,
    // first served. This requester's retry will revoke the new owner next.
    return;
  }
  pending_grants_[ref] = {msg.req_id, msg.requester};
  deliver(current, pkt::OwnRequest{msg.space, msg.key, msg.requester, msg.req_id,
                                   /*revoke=*/true});
}

void OwnerEngine::on_own_grant(const pkt::OwnGrant& msg) {
  auto sit = spaces_.find(msg.space);
  if (sit == spaces_.end()) return;
  OwnSpaceState& st = *sit->second;

  // Home relay: an owner relinquished in response to our revoke. Fold the
  // authoritative value into the backup, repoint the directory, and forward
  // the grant to the requester.
  auto git = pending_grants_.find(KeyRef{msg.space, msg.key});
  if (git != pending_grants_.end() && git->second.req_id == msg.req_id) {
    if (msg.version >= st.version(msg.key)) {
      // The relinquished value folding into the home backup IS the (single)
      // replica apply for the old owner's in-flight writes: close their
      // propagation records here so migration does not leak inflight entries.
      if (obs_ != nullptr) {
        const SwitchId prev_owner = st.dir_owner(msg.key);
        if (prev_owner != kInvalidNode && prev_owner != host_.self()) {
          obs_->on_apply(msg.space, msg.key, prev_owner, msg.version, host_.self());
        }
      }
      st.store(msg.key, msg.value, msg.version);
    }
    const SwitchId requester = git->second.requester;
    pending_grants_.erase(git);
    grant_from_backup(st, msg.space, msg.key, requester, msg.req_id);
    return;
  }

  // Requester side: install (req_id-guarded).
  if (msg.new_owner == host_.self()) install_grant(msg);
}

// ---------------------------------------------------------------------------
// Backup flush (owner -> home) and directory healing
// ---------------------------------------------------------------------------

void OwnerEngine::send_backup_entries(std::uint32_t space, const OwnSpaceState& st,
                                      const std::vector<std::uint64_t>& slots) {
  // Keys hash to per-key homes: bucket the entries by destination, then chunk.
  std::map<SwitchId, std::vector<pkt::EwoEntry>> by_home;
  for (std::uint64_t slot : slots) {
    if (!st.owned(slot)) continue;  // relinquished since marked dirty
    by_home[home_of(space, slot)].push_back(
        {space, slot, st.version(slot), st.value(slot)});
  }
  const std::size_t chunk = host_.config().own_backup_chunk;
  for (auto& [home, entries] : by_home) {
    if (home == host_.self()) continue;  // backup of self-homed keys is the copy itself
    for (std::size_t off = 0; off < entries.size(); off += chunk) {
      pkt::OwnUpdate update;
      update.owner = host_.self();
      update.claim = true;
      const std::size_t end = std::min(off + chunk, entries.size());
      update.entries.assign(entries.begin() + static_cast<std::ptrdiff_t>(off),
                            entries.begin() + static_cast<std::ptrdiff_t>(end));
      stats_.backup_entries_sent += update.entries.size();
      deliver(home, update);
    }
  }
}

void OwnerEngine::backup_flush() {
  // Root a span per flush round: backup propagation is the apply half of
  // OWN's consistency lag, so it must be visible in the causal DAG.
  const telemetry::SpanContext tr = trace_root("own_backup");
  ActiveTraceScope scope(host_, tr.sampled() ? tr : host_.active_trace());
  for (auto& [id, sp] : spaces_) send_backup_entries(id, *sp, sp->take_dirty());
}

void OwnerEngine::flush_claims() {
  const telemetry::SpanContext tr = trace_root("own_claims");
  ActiveTraceScope scope(host_, tr.sampled() ? tr : host_.active_trace());
  for (auto& [id, sp] : spaces_) send_backup_entries(id, *sp, sp->owned_slots());
}

void OwnerEngine::on_own_update(const pkt::OwnUpdate& msg) {
  bool merged_any = false;
  for (const auto& entry : msg.entries) {
    auto sit = spaces_.find(entry.space);
    if (sit == spaces_.end()) continue;
    OwnSpaceState& st = *sit->second;
    if (st.owned(entry.key)) continue;  // our owned copy outranks any backup
    if (entry.version > st.version(entry.key)) {
      st.store(entry.key, entry.value, entry.version);
      ++stats_.backup_entries_merged;
      merged_any = true;
    }
    // The observatory subsumes older idents and deduplicates replicas, so
    // reporting every entry (merged or not) is safe and closes records whose
    // value reached us through another path first.
    if (obs_ != nullptr) {
      obs_->on_apply(entry.space, entry.key, msg.owner, entry.version, host_.self());
    }
    if (msg.claim && home_of(entry.space, entry.key) == host_.self()) {
      // Directory self-healing: adopt the claimant when the directory has no
      // owner on record. A conflicting record wins — grants are authoritative.
      if (st.dir_owner(entry.key) == kInvalidNode) st.set_dir_owner(entry.key, msg.owner);
    }
  }
  if (merged_any && !msg.entries.empty()) {
    trace_point("own_backup_apply", msg.entries.front().space, msg.entries.front().key);
  }
}

// ---------------------------------------------------------------------------
// Recovery (§6.3)
// ---------------------------------------------------------------------------

void OwnerEngine::collect_snapshot(std::optional<std::uint32_t> space_filter,
                                   std::vector<SnapshotOp>& out) const {
  // Ascending space id, ascending slot/key: snapshot order must not depend
  // on unordered_map iteration (determinism across runs and shard counts).
  std::vector<std::uint32_t> ids;
  for (const auto& [id, sp] : spaces_) {
    if (space_filter && id != *space_filter) continue;
    ids.push_back(id);
  }
  std::sort(ids.begin(), ids.end());
  for (const std::uint32_t id : ids) {
    const OwnSpaceState& sp = *spaces_.at(id);
    for (std::uint64_t slot : sp.live_slots()) {
      out.push_back({pkt::WriteOp{id, slot, sp.value(slot)}, sp.version(slot)});
    }
  }
}

std::unique_ptr<SnapshotSource> OwnerEngine::snapshot_source(
    std::optional<std::uint32_t> space_filter) {
  std::vector<std::uint32_t> ids;
  for (const auto& [id, sp] : spaces_) {
    if (space_filter && id != *space_filter) continue;
    ids.push_back(id);
  }
  std::sort(ids.begin(), ids.end());
  std::vector<std::unique_ptr<SnapshotSource>> parts;
  for (const std::uint32_t id : ids) {
    OwnSpaceState& sp = *spaces_.at(id);
    if (sp.sparse_store() != nullptr) {
      parts.push_back(make_pinned_source(
          sp.pin_snapshot(), [id](const store::Entry& e, SnapshotOp& op) {
            if (e.version == 0) return false;  // dir-only entry, nothing to replay
            op = {pkt::WriteOp{id, e.key, e.value}, static_cast<SeqNum>(e.version)};
            return true;
          }));
    } else {
      std::vector<SnapshotOp> ops;
      for (std::uint64_t slot : sp.live_slots()) {
        ops.push_back({pkt::WriteOp{id, slot, sp.value(slot)}, sp.version(slot)});
      }
      parts.push_back(make_vector_source(std::move(ops)));
    }
  }
  return make_chained_source(std::move(parts));
}

void OwnerEngine::apply_recovery_op(const pkt::WriteOp& op, SeqNum seq) {
  auto sit = spaces_.find(op.space);
  if (sit == spaces_.end()) return;
  OwnSpaceState& st = *sit->second;
  if (st.owned(op.key)) return;
  if (seq > st.version(op.key)) st.store(op.key, op.value, seq);
}

const OwnSpaceState* OwnerEngine::space_state(std::uint32_t id) const {
  auto it = spaces_.find(id);
  return it == spaces_.end() ? nullptr : it->second.get();
}

std::vector<ProtocolEngine::StatRow> OwnerEngine::stat_rows() const {
  return {
      {"reads", stats_.reads},
      {"local_writes", stats_.local_writes},
      {"acquisitions_started", stats_.acquisitions_started},
      {"acquisitions_completed", stats_.acquisitions_completed},
      {"acquisitions_failed", stats_.acquisitions_failed},
      {"acquisition_retries", stats_.acquisition_retries},
      {"revokes_served", stats_.revokes_served},
      {"grants_issued", stats_.grants_issued},
      {"queue_rejected", stats_.queue_rejected},
      {"backup_entries_sent", stats_.backup_entries_sent},
      {"backup_entries_merged", stats_.backup_entries_merged},
      {"bytes", stats_.bytes},
  };
}

}  // namespace swish::shm
