// Shared chain-replication machinery for the strongly-consistent classes
// (§6.1): writer-side control-plane buffering with timeout/retry, head
// sequencing with retransmit dedup, per-slot in-order relay, tail commit +
// ack multicast, CRAQ-style reads, tail redirection, and the donor-side
// snapshot contract of §6.3. SroEngine and EroEngine differ only in read
// locality (the pending-bit check vs always-local).
#pragma once

#include <unordered_map>

#include "common/stats.hpp"
#include "pisa/switch.hpp"
#include "swishmem/protocols/engine.hpp"
#include "swishmem/spaces.hpp"

namespace swish::shm {

class ChainEngine : public ProtocolEngine {
 public:
  /// Registry-backed counters under `shm.sw<id>.<sro|ero>.*`; this struct is
  /// a view over the simulator's MetricsRegistry cells.
  struct Stats {
    // Writer side.
    telemetry::Counter writes_submitted;
    telemetry::Counter writes_committed;
    telemetry::Counter write_retries;
    telemetry::Counter writes_failed;    ///< gave up after max retries
    telemetry::Counter writes_rejected;  ///< CP buffer full
    // Chain side.
    telemetry::Counter chain_requests_seen;
    telemetry::Counter chain_gap_drops;  ///< out-of-order writes awaiting retry
    telemetry::Counter chain_stale_epoch;
    // Reads.
    telemetry::Counter reads_local;
    telemetry::Counter reads_redirected;
    // Protocol bandwidth, accounted by this engine (satellite: engines own
    // their byte counters; the runtime reconciles totals).
    telemetry::Counter bytes_write;     ///< WriteRequest + WriteAck
    telemetry::Counter bytes_redirect;  ///< ReadRedirect
    // Writer-observed commit latency (submit -> ack), ns.
    telemetry::Histo write_latency;
  };

  /// `proto_name` ("sro" / "ero") names this engine's registry subtree; the
  /// base class cannot call the name() virtual during construction.
  ChainEngine(EngineHost& host, const char* proto_name);

  // -- ProtocolEngine ----------------------------------------------------------
  void add_space(const SpaceConfig& config, const std::vector<SwitchId>& replicas) override;
  void add_remote_space(const SpaceConfig& config) override;
  [[nodiscard]] bool hosts_space(std::uint32_t space) const noexcept override;
  [[nodiscard]] bool serves_space(std::uint32_t space) const noexcept override;
  void reset() override;

  ReadStatus read(pisa::PacketContext* ctx, std::uint32_t space, std::uint64_t key,
                  std::uint64_t& value) override;
  [[nodiscard]] std::optional<std::uint64_t> read_lpm(std::uint32_t space,
                                                      std::uint64_t key) override;
  void write(std::vector<pkt::WriteOp> ops, pkt::Packet output, WriteRelease release) override;

  [[nodiscard]] std::vector<pkt::MsgType> message_types() const override;
  bool handle_message(const pkt::SwishMessage& msg) override;

  void collect_snapshot(std::optional<std::uint32_t> space_filter,
                        std::vector<SnapshotOp>& out) const override;
  [[nodiscard]] std::unique_ptr<SnapshotSource> snapshot_source(
      std::optional<std::uint32_t> space_filter) override;
  void apply_recovery_op(const pkt::WriteOp& op, SeqNum seq) override;

  [[nodiscard]] std::uint64_t protocol_bytes() const noexcept override {
    return stats_.bytes_write + stats_.bytes_redirect;
  }
  [[nodiscard]] std::vector<StatRow> stat_rows() const override;

  // -- Introspection used by the runtime's legacy accessors/stats ---------------
  [[nodiscard]] const SroSpaceState* space_state(std::uint32_t id) const;
  [[nodiscard]] const Stats& chain_stats() const noexcept { return stats_; }
  [[nodiscard]] std::size_t cp_buffered_packets() const noexcept {
    return pending_writes_.size();
  }

 protected:
  /// Read-locality policy: true when a read of `key` may be served locally
  /// without consulting the guard table (the SRO/ERO split).
  [[nodiscard]] virtual bool always_local() const noexcept = 0;

 private:
  struct PendingWrite {
    std::vector<pkt::WriteOp> ops;
    pkt::Packet output;
    WriteRelease release;
    unsigned retries = 0;
    TimeNs submit_time = 0;
    sim::TimerHandle retry_timer;
    telemetry::SpanContext trace;  ///< causal chain of this write (if sampled)
  };

  // Message handlers.
  void on_write_request(const pkt::WriteRequest& msg);
  void on_write_ack(const pkt::WriteAck& msg);

  // Chain roles.
  void head_process(pkt::WriteRequest msg);
  void relay_process(pkt::WriteRequest msg);
  void tail_commit(const pkt::WriteRequest& msg);
  [[nodiscard]] bool ops_table_backed(const std::vector<pkt::WriteOp>& ops) const;

  // Writer side.
  void send_write_request(std::uint64_t write_id);
  void arm_retry(std::uint64_t write_id);

  // Transport helpers accounting into bytes_write.
  void send_chain_msg(SwitchId dst, const pkt::SwishMessage& msg);

  [[nodiscard]] SwitchId chain_successor(const pkt::ChainConfig& chain) const noexcept;
  [[nodiscard]] static bool chain_contains(const pkt::ChainConfig& chain, SwitchId sw) noexcept;

  /// Hosted space ids matching `space_filter`, ascending — snapshot order
  /// must not depend on unordered_map iteration (determinism across runs).
  [[nodiscard]] std::vector<std::uint32_t> snapshot_space_ids(
      std::optional<std::uint32_t> space_filter) const;

  std::unordered_map<std::uint32_t, std::unique_ptr<SroSpaceState>> spaces_;
  std::unordered_map<std::uint32_t, SpaceConfig> remote_spaces_;

  // Writer state (CP DRAM).
  std::unordered_map<std::uint64_t, PendingWrite> pending_writes_;
  std::uint64_t next_write_id_ = 0;

  // Head dedup: write_id -> assigned seqs for in-flight writes.
  std::unordered_map<std::uint64_t, std::vector<SeqNum>> head_assigned_;

  Stats stats_;
};

/// Strong Read Optimized (§6.1): CRAQ-style local reads, pending registers
/// redirect to the tail.
class SroEngine final : public ChainEngine {
 public:
  explicit SroEngine(EngineHost& host) : ChainEngine(host, "sro") {}
  [[nodiscard]] ConsistencyClass cls() const noexcept override {
    return ConsistencyClass::kSRO;
  }
  [[nodiscard]] const char* name() const noexcept override { return "sro"; }

 protected:
  [[nodiscard]] bool always_local() const noexcept override { return false; }
};

/// Eventual Read Optimized (§6.1): SRO's write path, always-local reads, no
/// pending bits.
class EroEngine final : public ChainEngine {
 public:
  explicit EroEngine(EngineHost& host) : ChainEngine(host, "ero") {}
  [[nodiscard]] ConsistencyClass cls() const noexcept override {
    return ConsistencyClass::kERO;
  }
  [[nodiscard]] const char* name() const noexcept override { return "ero"; }

 protected:
  [[nodiscard]] bool always_local() const noexcept override { return true; }
};

}  // namespace swish::shm
