// The pluggable consistency-protocol engine seam (§3, §6): every register
// class of the paper's access-pattern taxonomy is one ProtocolEngine
// implementation living in this directory. ShmRuntime is reduced to packet
// classification, engine lookup, and fabric I/O; everything protocol-specific
// — space storage, wire-message handling, periodic work, recovery hooks, and
// per-protocol statistics — sits behind this interface.
//
// Adding a protocol is a one-directory change: implement ProtocolEngine,
// declare the wire message types it consumes (the runtime builds a
// (message type -> engine) dispatch registry from message_types()), and add
// a case to make_engine() in registry.cpp.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/types.hpp"
#include "packet/packet.hpp"
#include "packet/swish_wire.hpp"
#include "swishmem/config.hpp"
#include "swishmem/store/ordered_index.hpp"
#include "telemetry/drop.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/observatory.hpp"
#include "telemetry/span.hpp"

namespace swish::pisa {
class Switch;
struct PacketContext;
}  // namespace swish::pisa

namespace swish::shm {

/// Outcome of a strong read during packet processing.
enum class ReadStatus {
  kOk,          ///< value is valid (read served locally or authoritatively)
  kMiss,        ///< table-backed space has no entry for the key
  kRedirected,  ///< original packet was forwarded to the chain tail; the NF
                ///< must stop processing this packet and emit no output
};

/// Runs when a buffered output packet may be released (write committed).
using WriteRelease = std::function<void(pkt::Packet&&)>;

/// Completion of an asynchronous read-modify-write; receives the new value.
using UpdateDone = std::function<void(std::uint64_t)>;

/// One entry of a recovery snapshot: the op replaying the value plus the
/// guard/version sequence at snapshot time.
struct SnapshotOp {
  pkt::WriteOp op;
  SeqNum seq = 0;
};

/// Pull-based donor snapshot stream (§6.3). The source is created — and its
/// state frozen — synchronously at start_recovery_stream time; the runtime
/// then drains it one chunk per in-flight frame, so a sparse space's CoW pin
/// is held only as long as the drain and a million-key snapshot never
/// materializes in memory at once.
class SnapshotSource {
 public:
  virtual ~SnapshotSource() = default;
  SnapshotSource() = default;
  SnapshotSource(const SnapshotSource&) = delete;
  SnapshotSource& operator=(const SnapshotSource&) = delete;

  /// Appends up to `max_ops` snapshot ops to `out`; returns true while more
  /// remain (false = drained; pinned pages are released at that point).
  virtual bool next(std::size_t max_ops, std::vector<SnapshotOp>& out) = 0;
};

/// Wraps an eagerly collected snapshot (dense spaces: the collect itself is
/// the freeze point).
std::unique_ptr<SnapshotSource> make_vector_source(std::vector<SnapshotOp> ops);
/// Lazily drains a pinned CoW snapshot in key order; `project` fills the
/// replay op for an entry (protocol-specific seq extraction) or returns
/// false to skip it. The pin is released when the drain completes or the
/// source dies.
std::unique_ptr<SnapshotSource> make_pinned_source(
    store::OrderedIndex::Snapshot snap,
    std::function<bool(const store::Entry&, SnapshotOp&)> project);
/// Concatenates sub-sources in order (multi-space donors).
std::unique_ptr<SnapshotSource> make_chained_source(
    std::vector<std::unique_ptr<SnapshotSource>> sources);

/// Services the runtime provides to its engines: transport with byte
/// accounting, configuration pushed by the controller, timers, and hooks
/// back into the NF / the recovery stream. Implemented by ShmRuntime.
class EngineHost {
 public:
  virtual ~EngineHost() = default;

  [[nodiscard]] virtual pisa::Switch& sw() noexcept = 0;
  [[nodiscard]] virtual const RuntimeConfig& config() const noexcept = 0;
  [[nodiscard]] virtual SwitchId self() const noexcept = 0;

  /// Chain governing a space (its own chain when partitioned, §9).
  [[nodiscard]] virtual const pkt::ChainConfig& chain_for(std::uint32_t space) const noexcept = 0;
  [[nodiscard]] virtual const pkt::GroupConfig& group() const noexcept = 0;
  /// Replica set passed to add_space (the full deployment by default).
  [[nodiscard]] virtual const std::vector<SwitchId>& deployment() const noexcept = 0;

  /// Sends one protocol message into the fabric; returns the wire bytes so
  /// the engine can account its own protocol bandwidth.
  virtual std::size_t send(SwitchId dst, const pkt::SwishMessage& msg) = 0;

  /// Registers a periodic background task (packet-generator driven); valid
  /// from ProtocolEngine::start().
  virtual void every(TimeNs period, std::function<void()> tick) = 0;

  /// True while this switch is serving a redirected read at the tail (the
  /// tail's state is authoritative, §6.1).
  [[nodiscard]] virtual bool authoritative() const noexcept = 0;

  /// Feeds a committed write into the active recovery stream, if any (the
  /// donor-side tap of §6.3).
  virtual void recovery_tap(const std::vector<pkt::WriteOp>& ops,
                            const std::vector<SeqNum>& seqs) = 0;

  /// Mirror-on-drop: reports a protocol-level reject/abandon (queue
  /// overflow, retry exhaustion, quorum loss) into the simulation's typed
  /// drop ring. `detail` is site-specific (usually the key or peer involved).
  /// Defaulted to a no-op: external hosts need no forensics.
  virtual void report_drop(telemetry::DropReason reason, std::uint64_t detail) {
    (void)reason;
    (void)detail;
  }

  // -- Observability (defaulted: external hosts need no tracing) ----------------
  /// Span recorder of this simulation, or nullptr when causal tracing is
  /// unavailable. Engines cache the pointer; a disabled recorder is one
  /// branch per call, so they need not re-check enablement.
  [[nodiscard]] virtual telemetry::SpanRecorder* spans() noexcept { return nullptr; }
  /// Consistency-lag observatory, or nullptr when unavailable.
  [[nodiscard]] virtual telemetry::ConsistencyObservatory* observatory() noexcept {
    return nullptr;
  }
  /// Trace context of the causal chain currently executing on this switch —
  /// set by the runtime around message dispatch and by engines around
  /// deferred work (control-plane closures, timers). send() attaches it to
  /// outgoing messages.
  [[nodiscard]] virtual telemetry::SpanContext active_trace() const noexcept { return {}; }
  virtual void set_active_trace(const telemetry::SpanContext&) noexcept {}
  /// Stable pointer to the host's active-trace slot, or nullptr when the
  /// host keeps none. Engines cache it at construction so the frequent
  /// "tracing on but this chain unsampled" check is two loads instead of a
  /// virtual call per datapath operation (bench_throughput --overhead-gate).
  [[nodiscard]] virtual const telemetry::SpanContext* active_trace_ptr() const noexcept {
    return nullptr;
  }
};

/// RAII guard installing `ctx` as the host's active trace context for the
/// current scope; restores the previous context on exit. Used by engines to
/// re-enter a causal chain from deferred work (control-plane submissions,
/// retry timers, flush buffers).
class ActiveTraceScope {
 public:
  ActiveTraceScope(EngineHost& host, const telemetry::SpanContext& ctx) noexcept
      : host_(host), saved_(host.active_trace()) {
    host_.set_active_trace(ctx);
  }
  ~ActiveTraceScope() { host_.set_active_trace(saved_); }
  ActiveTraceScope(const ActiveTraceScope&) = delete;
  ActiveTraceScope& operator=(const ActiveTraceScope&) = delete;

 private:
  EngineHost& host_;
  telemetry::SpanContext saved_;
};

/// One consistency protocol: owns the space state of its class and the full
/// protocol state machine. One instance per (runtime, class-in-use).
class ProtocolEngine {
 public:
  /// (label, value) rows for per-engine reporting (swish_sim exit summary).
  using StatRow = std::pair<std::string, std::uint64_t>;

  explicit ProtocolEngine(EngineHost& host)
      : host_(host),
        obs_(host.observatory()),
        spans_(host.spans()),
        active_ctx_(host.active_trace_ptr()) {}
  virtual ~ProtocolEngine() = default;
  ProtocolEngine(const ProtocolEngine&) = delete;
  ProtocolEngine& operator=(const ProtocolEngine&) = delete;

  [[nodiscard]] virtual ConsistencyClass cls() const noexcept = 0;
  [[nodiscard]] virtual const char* name() const noexcept = 0;

  // -- Spaces -----------------------------------------------------------------
  virtual void add_space(const SpaceConfig& config, const std::vector<SwitchId>& replicas) = 0;
  /// Declares a space of this class the switch does NOT replicate (§9).
  /// Engines without a remote-access path reject it.
  virtual void add_remote_space(const SpaceConfig& config);
  [[nodiscard]] virtual bool hosts_space(std::uint32_t space) const noexcept = 0;
  /// True when the engine can serve any operation on the space (hosted or
  /// remotely accessible) — used by the runtime's space -> engine map.
  [[nodiscard]] virtual bool serves_space(std::uint32_t space) const noexcept {
    return hosts_space(space);
  }

  // -- Lifecycle ---------------------------------------------------------------
  /// Called once after configuration bootstrap; register periodic ticks here.
  virtual void start() {}
  /// Wipes all protocol and space state (a replacement switch boots empty).
  virtual void reset() = 0;
  /// Chain/group configuration changed (controller push or failover).
  virtual void on_config_update() {}

  // -- Datapath (NF-facing, uniform across engines) -----------------------------
  /// Read during packet processing. `ctx` enables redirection; engines that
  /// never redirect ignore it (and accept nullptr).
  virtual ReadStatus read(pisa::PacketContext* ctx, std::uint32_t space, std::uint64_t key,
                          std::uint64_t& value) = 0;
  /// Longest-prefix-match read over a sparse space holding lpm_pack()ed
  /// keys; always local (no redirect — prefix tables are config-like state).
  /// nullopt when the space is dense, unknown, or nothing matches.
  [[nodiscard]] virtual std::optional<std::uint64_t> read_lpm(std::uint32_t space,
                                                              std::uint64_t key);
  /// Write of one or more ops (all in spaces of this engine). `release` runs
  /// on this switch when the write has committed per the engine's contract —
  /// immediately for eventually-consistent engines.
  virtual void write(std::vector<pkt::WriteOp> ops, pkt::Packet output, WriteRelease release) = 0;
  /// Read-modify-write (counters). Returns false when the engine does not
  /// support atomic updates; `done` receives the new value once applied.
  virtual bool update(std::uint32_t space, std::uint64_t key, std::int64_t delta,
                      UpdateDone done);

  // -- Wire --------------------------------------------------------------------
  /// Message types this engine consumes; the runtime registers the engine
  /// for each in its dispatch registry.
  [[nodiscard]] virtual std::vector<pkt::MsgType> message_types() const = 0;
  /// Handles one protocol message. Returns false when the message belongs to
  /// another engine registered for the same type (e.g. chain traffic for a
  /// space of a different class); the runtime then tries the next claimant.
  virtual bool handle_message(const pkt::SwishMessage& msg) = 0;

  // -- Recovery (§6.3) ----------------------------------------------------------
  /// Donor side: appends this engine's replayable state to a snapshot.
  virtual void collect_snapshot(std::optional<std::uint32_t> space_filter,
                                std::vector<SnapshotOp>& out) const;
  /// Donor side, streaming: a source whose content is frozen at this call.
  /// The default eagerly collects (exact for dense spaces); engines hosting
  /// sparse spaces override to pin CoW snapshots instead.
  [[nodiscard]] virtual std::unique_ptr<SnapshotSource> snapshot_source(
      std::optional<std::uint32_t> space_filter);
  /// Target side: applies one replayed snapshot/live-tap op in stream order.
  virtual void apply_recovery_op(const pkt::WriteOp& op, SeqNum seq);

  // -- Introspection -------------------------------------------------------------
  /// Wire bytes of every message this engine has sent (bandwidth accounting
  /// lives behind the engine interface; the runtime reconciles totals).
  [[nodiscard]] virtual std::uint64_t protocol_bytes() const noexcept = 0;
  /// Engine-specific counters for reporting.
  [[nodiscard]] virtual std::vector<StatRow> stat_rows() const = 0;

 protected:
  /// Metrics registry of the simulation this engine's switch runs in.
  [[nodiscard]] telemetry::MetricsRegistry& host_metrics() const;
  /// This engine's registry subtree: "shm.sw<id>.<proto_name>.".
  [[nodiscard]] std::string metric_prefix(const char* proto_name) const;

  /// Starts — or continues — the sampled causal chain for a write
  /// originating on this switch. When the current dispatch already carries a
  /// sampled context (the write was triggered by a redirect, grant, or
  /// recovery frame) the chain continues; otherwise the recorder takes a
  /// fresh root-sampling decision. Records the span and returns its context;
  /// the engine re-enters it (ActiveTraceScope) around whatever sends the
  /// resulting protocol traffic — possibly from deferred control-plane work.
  /// Returns an unsampled context when tracing is off or sampled out.
  /// Inline: the enabled-but-unsampled steady state must cost only a few
  /// loads per write (gated at 2% by bench_throughput --overhead-gate).
  telemetry::SpanContext trace_origin(const char* name, std::uint32_t space, std::uint64_t key) {
    if (spans_ == nullptr || !spans_->enabled()) return {};
    const telemetry::SpanContext parent = current_trace();
    if (parent.sampled()) return spans_->record_instant(parent, host_.self(), name, space, key);
    const telemetry::SpanContext ctx = spans_->maybe_start_trace();
    if (!ctx.sampled()) return {};
    const TimeNs t = spans_->now();
    spans_->record({ctx.trace_id, ctx.span_id, 0, host_.self(), name, t, t, 0, space, key});
    return ctx;
  }

  /// Roots a fresh sampled trace for background/periodic protocol traffic
  /// (anti-entropy sync, backup flushes) when no trace is already active;
  /// returns an unsampled context when tracing is off, a trace is already
  /// active, or root sampling skips this round.
  telemetry::SpanContext trace_root(const char* name) {
    if (spans_ == nullptr || !spans_->enabled() || current_trace().sampled()) return {};
    const telemetry::SpanContext ctx = spans_->maybe_start_trace();
    if (!ctx.sampled()) return {};
    const TimeNs t = spans_->now();
    spans_->record({ctx.trace_id, ctx.span_id, 0, host_.self(), name, t, t, 0, 0, 0});
    return ctx;
  }

  /// Records a point span continuing the active trace (e.g. a replica
  /// apply); returns the recorded context without changing the active trace.
  telemetry::SpanContext trace_point(const char* name, std::uint32_t space, std::uint64_t key) {
    if (spans_ == nullptr || !spans_->enabled()) return {};
    const telemetry::SpanContext parent = current_trace();
    if (!parent.sampled()) return {};
    return spans_->record_instant(parent, host_.self(), name, space, key);
  }

  EngineHost& host_;
  /// Consistency-lag observatory, cached at construction (nullptr for hosts
  /// without one; a disabled observatory early-returns on every call).
  telemetry::ConsistencyObservatory* obs_ = nullptr;

 private:
  /// Host's active trace context via the cached slot pointer when available.
  [[nodiscard]] telemetry::SpanContext current_trace() const noexcept {
    return active_ctx_ != nullptr ? *active_ctx_ : host_.active_trace();
  }

  /// Span recorder and active-trace slot, cached at construction (both have
  /// stable addresses for the lifetime of the simulation).
  telemetry::SpanRecorder* spans_ = nullptr;
  const telemetry::SpanContext* active_ctx_ = nullptr;
};

/// Creates the engine implementing `cls` (the only place that maps a
/// consistency class to its protocol).
std::unique_ptr<ProtocolEngine> make_engine(ConsistencyClass cls, EngineHost& host);

}  // namespace swish::shm
