#include "swishmem/protocols/chain_engine.hpp"

#include <algorithm>

#include "common/log.hpp"

namespace swish::shm {

ChainEngine::ChainEngine(EngineHost& host, const char* proto_name) : ProtocolEngine(host) {
  telemetry::MetricsRegistry& reg = host_metrics();
  const std::string p = metric_prefix(proto_name);
  stats_.writes_submitted = reg.counter(p + "writes_submitted");
  stats_.writes_committed = reg.counter(p + "writes_committed");
  stats_.write_retries = reg.counter(p + "write_retries");
  stats_.writes_failed = reg.counter(p + "writes_failed");
  stats_.writes_rejected = reg.counter(p + "writes_rejected");
  stats_.chain_requests_seen = reg.counter(p + "chain_requests_seen");
  stats_.chain_gap_drops = reg.counter(p + "chain_gap_drops");
  stats_.chain_stale_epoch = reg.counter(p + "chain_stale_epoch");
  stats_.reads_local = reg.counter(p + "reads_local");
  stats_.reads_redirected = reg.counter(p + "reads_redirected");
  stats_.bytes_write = reg.counter(p + "bytes_write");
  stats_.bytes_redirect = reg.counter(p + "bytes_redirect");
  stats_.write_latency = reg.histogram(p + "write_latency_ns");
}

void ChainEngine::add_space(const SpaceConfig& config, const std::vector<SwitchId>& replicas) {
  (void)replicas;  // chain membership comes from the controller's pushes
  spaces_.emplace(config.id, std::make_unique<SroSpaceState>(host_.sw(), config));
  remote_spaces_.erase(config.id);  // migration: this switch became a member
}

void ChainEngine::add_remote_space(const SpaceConfig& config) {
  remote_spaces_.emplace(config.id, config);
}

bool ChainEngine::hosts_space(std::uint32_t space) const noexcept {
  return spaces_.contains(space);
}

bool ChainEngine::serves_space(std::uint32_t space) const noexcept {
  return spaces_.contains(space) || remote_spaces_.contains(space);
}

const SroSpaceState* ChainEngine::space_state(std::uint32_t id) const {
  auto it = spaces_.find(id);
  return it == spaces_.end() ? nullptr : it->second.get();
}

void ChainEngine::reset() {
  for (auto& [id, sp] : spaces_) sp->reset(host_.sw().control_plane().token());
  for (auto& [id, pw] : pending_writes_) pw.retry_timer.cancel();
  pending_writes_.clear();
  head_assigned_.clear();
}

std::vector<pkt::MsgType> ChainEngine::message_types() const {
  return {pkt::MsgType::kWriteRequest, pkt::MsgType::kWriteAck};
}

bool ChainEngine::handle_message(const pkt::SwishMessage& msg) {
  if (const auto* req = std::get_if<pkt::WriteRequest>(&msg)) {
    if (req->ops.empty() || !serves_space(req->ops.front().space)) return false;
    on_write_request(*req);
    return true;
  }
  if (const auto* ack = std::get_if<pkt::WriteAck>(&msg)) {
    if (ack->ops.empty() || !serves_space(ack->ops.front().space)) return false;
    on_write_ack(*ack);
    return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Transport
// ---------------------------------------------------------------------------

void ChainEngine::send_chain_msg(SwitchId dst, const pkt::SwishMessage& msg) {
  stats_.bytes_write += host_.send(dst, msg);
}

bool ChainEngine::chain_contains(const pkt::ChainConfig& chain, SwitchId sw) noexcept {
  return std::find(chain.chain.begin(), chain.chain.end(), sw) != chain.chain.end();
}

SwitchId ChainEngine::chain_successor(const pkt::ChainConfig& chain) const noexcept {
  auto it = std::find(chain.chain.begin(), chain.chain.end(), host_.self());
  if (it == chain.chain.end() || it + 1 == chain.chain.end()) return kInvalidNode;
  return *(it + 1);
}

// ---------------------------------------------------------------------------
// Writer side (§6.1)
// ---------------------------------------------------------------------------

void ChainEngine::write(std::vector<pkt::WriteOp> ops, pkt::Packet output, WriteRelease release) {
  ++stats_.writes_submitted;
  if (pending_writes_.size() >= host_.config().cp_buffer_limit) {
    ++stats_.writes_rejected;
    host_.report_drop(telemetry::DropReason::kCpBufferFull,
                      ops.empty() ? 0 : ops.front().key);
    return;
  }
  // 40-bit mask: the counter must never wrap into the switch-id bits (same
  // id-minting scheme as OwnerEngine req_ids).
  const std::uint64_t id = (static_cast<std::uint64_t>(host_.self()) << 40) |
                           (++next_write_id_ & ((1ULL << 40) - 1));
  PendingWrite pw;
  pw.ops = std::move(ops);
  pw.output = std::move(output);
  pw.release = std::move(release);
  pw.submit_time = host_.sw().simulator().now();
  if (!pw.ops.empty()) {
    pw.trace = trace_origin("chain_write", pw.ops.front().space, pw.ops.front().key);
    if (obs_ != nullptr) {
      // Commit-at-origin for lag accounting is the submit: each chain member
      // is one expected apply (the writer re-counts itself if in the chain).
      const auto expected =
          static_cast<std::uint32_t>(host_.chain_for(pw.ops.front().space).chain.size());
      for (const auto& op : pw.ops) obs_->on_commit(op.space, op.key, id, host_.self(), expected);
    }
  }
  const telemetry::SpanContext tr = pw.trace;
  pending_writes_.emplace(id, std::move(pw));
  // The control plane buffers P' and issues the write request (§6.1).
  const bool accepted = host_.sw().control_plane().submit([this, id, tr]() {
    ActiveTraceScope scope(host_, tr);
    send_write_request(id);
    arm_retry(id);
  });
  if (!accepted) {
    pending_writes_.erase(id);
    ++stats_.writes_rejected;
    host_.report_drop(telemetry::DropReason::kCpBufferFull, id);
  }
}

void ChainEngine::send_write_request(std::uint64_t write_id) {
  auto it = pending_writes_.find(write_id);
  if (it == pending_writes_.end()) return;
  if (it->second.ops.empty()) return;
  const pkt::ChainConfig& chain = host_.chain_for(it->second.ops.front().space);
  if (chain.chain.empty()) return;  // no chain configured yet; retry later
  pkt::WriteRequest req;
  req.epoch = chain.epoch;
  req.writer = host_.self();
  req.write_id = write_id;
  req.ops = it->second.ops;
  send_chain_msg(chain.chain.front(), req);
}

void ChainEngine::arm_retry(std::uint64_t write_id) {
  auto it = pending_writes_.find(write_id);
  if (it == pending_writes_.end()) return;
  it->second.retry_timer = host_.sw().control_plane().schedule_after(
      host_.config().write_retry_timeout, [this, write_id]() {
        auto pit = pending_writes_.find(write_id);
        if (pit == pending_writes_.end()) return;  // already committed
        if (++pit->second.retries > host_.config().max_write_retries) {
          ++stats_.writes_failed;
          host_.report_drop(telemetry::DropReason::kWriteRetriesExhausted, write_id);
          pending_writes_.erase(pit);
          return;
        }
        ++stats_.write_retries;
        // The retransmission stays on the original write's causal chain; the
        // runtime's send-identity cache reuses the first transmission's span.
        ActiveTraceScope scope(host_, pit->second.trace);
        send_write_request(write_id);
        arm_retry(write_id);
      });
}

// ---------------------------------------------------------------------------
// Chain side (§6.1)
// ---------------------------------------------------------------------------

bool ChainEngine::ops_table_backed(const std::vector<pkt::WriteOp>& ops) const {
  for (const auto& op : ops) {
    auto it = spaces_.find(op.space);
    if (it != spaces_.end() && it->second->config().table_backed) return true;
  }
  return false;
}

void ChainEngine::on_write_request(const pkt::WriteRequest& msg) {
  ++stats_.chain_requests_seen;
  if (msg.ops.empty()) return;
  const pkt::ChainConfig& chain = host_.chain_for(msg.ops.front().space);
  if (msg.epoch != chain.epoch) {
    ++stats_.chain_stale_epoch;
    return;  // writer will retry with the current epoch
  }
  if (!chain_contains(chain, host_.self())) return;
  if (msg.seqs.empty()) {
    if (chain.chain.front() != host_.self()) return;  // misrouted; dropped, retried
    head_process(msg);
  } else {
    relay_process(msg);
  }
}

void ChainEngine::head_process(pkt::WriteRequest msg) {
  auto work = [this, msg = std::move(msg), tr = host_.active_trace()]() mutable {
    ActiveTraceScope scope(host_, tr);
    auto dedup = head_assigned_.find(msg.write_id);
    if (dedup != head_assigned_.end()) {
      // Retransmitted write already sequenced: re-forward with the same seqs
      // so the chain stays idempotent.
      msg.seqs = dedup->second;
    } else {
      msg.seqs.resize(msg.ops.size());
      for (std::size_t i = 0; i < msg.ops.size(); ++i) {
        const auto& op = msg.ops[i];
        auto it = spaces_.find(op.space);
        if (it == spaces_.end()) continue;
        SroSpaceState& sp = *it->second;
        const SeqNum seq = sp.key_guard_seq(op.key) + 1;
        sp.apply(op.key, op.value, host_.sw().control_plane().token());
        sp.set_key_guard_seq(op.key, seq);
        sp.set_key_pending(op.key);
        msg.seqs[i] = seq;
      }
      // Bounded dedup memory: entries are erased on ack; a blunt clear guards
      // against pathological loss keeping the map growing.
      if (head_assigned_.size() > 65536) head_assigned_.clear();
      head_assigned_.emplace(msg.write_id, msg.seqs);
      trace_point("chain_apply", msg.ops.front().space, msg.ops.front().key);
      if (obs_ != nullptr) {
        for (const auto& op : msg.ops) {
          obs_->on_apply(op.space, op.key, msg.writer, msg.write_id, host_.self());
        }
      }
    }
    const pkt::ChainConfig& chain = host_.chain_for(msg.ops.front().space);
    if (chain.chain.back() == host_.self()) {
      tail_commit(msg);
    } else {
      send_chain_msg(chain_successor(chain), msg);
    }
  };
  // Table-backed state is updated through each hop's control plane (§6.1);
  // register-backed updates run entirely in the data plane.
  if (ops_table_backed(msg.ops)) {
    host_.sw().control_plane().submit(std::move(work));
  } else {
    work();
  }
}

void ChainEngine::relay_process(pkt::WriteRequest msg) {
  auto work = [this, msg = std::move(msg), tr = host_.active_trace()]() mutable {
    ActiveTraceScope scope(host_, tr);
    // Per-slot in-order check: a gap means an earlier write was lost; drop the
    // whole request and let the writer's retransmit repair the chain.
    for (std::size_t i = 0; i < msg.ops.size(); ++i) {
      auto it = spaces_.find(msg.ops[i].space);
      if (it == spaces_.end()) continue;
      const SroSpaceState& sp = *it->second;
      if (msg.seqs[i] > sp.key_guard_seq(msg.ops[i].key) + 1) {
        ++stats_.chain_gap_drops;
        return;
      }
    }
    bool applied_any = false;
    for (std::size_t i = 0; i < msg.ops.size(); ++i) {
      auto it = spaces_.find(msg.ops[i].space);
      if (it == spaces_.end()) continue;
      SroSpaceState& sp = *it->second;
      if (msg.seqs[i] == sp.key_guard_seq(msg.ops[i].key) + 1) {
        sp.apply(msg.ops[i].key, msg.ops[i].value, host_.sw().control_plane().token());
        sp.set_key_guard_seq(msg.ops[i].key, msg.seqs[i]);
        sp.set_key_pending(msg.ops[i].key);
        applied_any = true;
        if (obs_ != nullptr) {
          obs_->on_apply(msg.ops[i].space, msg.ops[i].key, msg.writer, msg.write_id,
                         host_.self());
        }
      }
      // seqs[i] <= guard: duplicate of an already-applied write; still forward
      // so downstream switches that missed it catch up.
    }
    if (applied_any) trace_point("chain_apply", msg.ops.front().space, msg.ops.front().key);
    const pkt::ChainConfig& chain = host_.chain_for(msg.ops.front().space);
    if (chain.chain.back() == host_.self()) {
      tail_commit(msg);
    } else {
      send_chain_msg(chain_successor(chain), msg);
    }
  };
  if (ops_table_backed(msg.ops)) {
    host_.sw().control_plane().submit(std::move(work));
  } else {
    work();
  }
}

void ChainEngine::tail_commit(const pkt::WriteRequest& msg) {
  if (!msg.ops.empty()) {
    trace_point("tail_commit", msg.ops.front().space, msg.ops.front().key);
  }
  // The tail's copy is authoritative; it never redirects, so its pending bits
  // can clear immediately.
  for (std::size_t i = 0; i < msg.ops.size(); ++i) {
    auto it = spaces_.find(msg.ops[i].space);
    if (it == spaces_.end()) continue;
    SroSpaceState& sp = *it->second;
    sp.clear_key_pending_up_to(msg.ops[i].key, msg.seqs[i]);
  }
  pkt::WriteAck ack{msg.epoch, msg.writer, msg.write_id, msg.ops, msg.seqs};
  send_chain_msg(msg.writer, ack);
  const pkt::ChainConfig& chain = host_.chain_for(msg.ops.empty() ? 0 : msg.ops.front().space);
  for (SwitchId member : chain.chain) {
    if (member == host_.self() || member == msg.writer) continue;
    send_chain_msg(member, ack);
  }
  // While a recovery stream is active, every commit is also fed to the
  // recovering switch, in order, behind the snapshot (§6.3).
  host_.recovery_tap(msg.ops, msg.seqs);
}

void ChainEngine::on_write_ack(const pkt::WriteAck& msg) {
  // Writer side: release the buffered output packet (via the CP, which
  // injects it back into the data plane, §7).
  if (msg.writer == host_.self()) {
    auto it = pending_writes_.find(msg.write_id);
    if (it != pending_writes_.end()) {
      it->second.retry_timer.cancel();
      ++stats_.writes_committed;
      if (!msg.ops.empty()) {
        trace_point("commit_ack", msg.ops.front().space, msg.ops.front().key);
      }
      stats_.write_latency.add(static_cast<std::uint64_t>(host_.sw().simulator().now() -
                                                          it->second.submit_time));
      auto release = std::move(it->second.release);
      auto output = std::move(it->second.output);
      pending_writes_.erase(it);
      if (release) {
        host_.sw().control_plane().submit(
            [release = std::move(release), output = std::move(output)]() mutable {
              release(std::move(output));
            });
      }
    }
  }
  // Ack processing in the data plane (§3.3): clear pending bits.
  for (std::size_t i = 0; i < msg.ops.size() && i < msg.seqs.size(); ++i) {
    auto it = spaces_.find(msg.ops[i].space);
    if (it == spaces_.end()) continue;
    SroSpaceState& sp = *it->second;
    sp.clear_key_pending_up_to(msg.ops[i].key, msg.seqs[i]);
  }
  head_assigned_.erase(msg.write_id);
}

// ---------------------------------------------------------------------------
// Reads (§6.1)
// ---------------------------------------------------------------------------

ReadStatus ChainEngine::read(pisa::PacketContext* ctx, std::uint32_t space, std::uint64_t key,
                             std::uint64_t& value) {
  const pkt::ChainConfig& chain = host_.chain_for(space);
  auto it = spaces_.find(space);
  if (it == spaces_.end()) {
    // Not a replica of this space (§9 partitioning): serve from the tail.
    auto rit = remote_spaces_.find(space);
    if (rit == remote_spaces_.end() || chain.chain.empty() || ctx == nullptr) {
      return ReadStatus::kMiss;
    }
    ++stats_.reads_redirected;
    stats_.bytes_redirect +=
        host_.send(chain.chain.back(), pkt::ReadRedirect{host_.self(), ctx->packet.bytes()});
    return ReadStatus::kRedirected;
  }
  const SroSpaceState& sp = *it->second;

  const bool tail_here = !chain.chain.empty() && chain.chain.back() == host_.self();
  bool local_ok = always_local()           // ERO: always local
                  || host_.authoritative() // already at the tail
                  || tail_here;            // tail state is committed
  if (!local_ok && chain_contains(chain, host_.self())) {
    local_ok = !sp.key_pending(key);  // CRAQ-style local read (§6.1)
  }
  if (!local_ok) {
    if (chain.chain.empty() || ctx == nullptr) {
      // Unreplicated deployment (nothing to redirect to), or a caller that
      // cannot be redirected: serve the local copy.
      local_ok = true;
    } else {
      ++stats_.reads_redirected;
      stats_.bytes_redirect +=
          host_.send(chain.chain.back(), pkt::ReadRedirect{host_.self(), ctx->packet.bytes()});
      return ReadStatus::kRedirected;
    }
  }
  ++stats_.reads_local;
  if (obs_ != nullptr) obs_->on_read(space, key, host_.self());
  auto v = sp.read(key);
  if (!v) return ReadStatus::kMiss;
  value = *v;
  return ReadStatus::kOk;
}

std::optional<std::uint64_t> ChainEngine::read_lpm(std::uint32_t space, std::uint64_t key) {
  auto it = spaces_.find(space);
  if (it == spaces_.end()) return std::nullopt;
  ++stats_.reads_local;
  return it->second->read_lpm(key);
}

// ---------------------------------------------------------------------------
// Recovery (§6.3)
// ---------------------------------------------------------------------------

std::vector<std::uint32_t> ChainEngine::snapshot_space_ids(
    std::optional<std::uint32_t> space_filter) const {
  std::vector<std::uint32_t> ids;
  for (const auto& [id, sp] : spaces_) {
    if (space_filter && id != *space_filter) continue;
    ids.push_back(id);
  }
  std::sort(ids.begin(), ids.end());
  return ids;
}

void ChainEngine::collect_snapshot(std::optional<std::uint32_t> space_filter,
                                   std::vector<SnapshotOp>& out) const {
  for (const std::uint32_t id : snapshot_space_ids(space_filter)) {
    const SroSpaceState& sp = *spaces_.at(id);
    for (const auto& entry : sp.snapshot()) out.push_back({entry.op, entry.seq});
  }
}

std::unique_ptr<SnapshotSource> ChainEngine::snapshot_source(
    std::optional<std::uint32_t> space_filter) {
  std::vector<std::unique_ptr<SnapshotSource>> parts;
  for (const std::uint32_t id : snapshot_space_ids(space_filter)) {
    SroSpaceState& sp = *spaces_.at(id);
    if (sp.sparse_store() != nullptr) {
      // CoW pin taken now: writes after this call never enter the stream's
      // snapshot portion (the runtime's live tap carries them instead).
      parts.push_back(make_pinned_source(
          sp.pin_snapshot(), [id](const store::Entry& e, SnapshotOp& op) {
            op = {pkt::WriteOp{id, e.key, e.value}, static_cast<SeqNum>(e.aux)};
            return true;  // tombstones stream too — they carry deletions
          }));
    } else {
      std::vector<SnapshotOp> ops;
      for (const auto& entry : sp.snapshot()) ops.push_back({entry.op, entry.seq});
      parts.push_back(make_vector_source(std::move(ops)));
    }
  }
  return make_chained_source(std::move(parts));
}

void ChainEngine::apply_recovery_op(const pkt::WriteOp& op, SeqNum seq) {
  auto it = spaces_.find(op.space);
  if (it == spaces_.end()) return;
  SroSpaceState& sp = *it->second;
  // Stream order replays the donor's apply order, so application is
  // unconditional; guards advance monotonically.
  sp.apply(op.key, op.value, host_.sw().control_plane().token());
  if (seq > sp.key_guard_seq(op.key)) sp.set_key_guard_seq(op.key, seq);
}

std::vector<ProtocolEngine::StatRow> ChainEngine::stat_rows() const {
  return {
      {"writes_submitted", stats_.writes_submitted},
      {"writes_committed", stats_.writes_committed},
      {"write_retries", stats_.write_retries},
      {"writes_failed", stats_.writes_failed},
      {"writes_rejected", stats_.writes_rejected},
      {"chain_requests_seen", stats_.chain_requests_seen},
      {"chain_gap_drops", stats_.chain_gap_drops},
      {"chain_stale_epoch", stats_.chain_stale_epoch},
      {"reads_local", stats_.reads_local},
      {"reads_redirected", stats_.reads_redirected},
      {"write_p99_ns", stats_.write_latency.p99()},
      {"bytes_write", stats_.bytes_write},
      {"bytes_redirect", stats_.bytes_redirect},
  };
}

}  // namespace swish::shm
