#include "swishmem/runtime.hpp"

#include <algorithm>

#include "net/topology.hpp"
#include "packet/int_md.hpp"
#include "swishmem/membership/swim_membership.hpp"
#include "swishmem/protocols/chain_engine.hpp"
#include "swishmem/protocols/consensus_engine.hpp"
#include "swishmem/protocols/ewo_engine.hpp"
#include "swishmem/protocols/own_space.hpp"
#include "swishmem/protocols/owner_engine.hpp"

namespace swish::shm {
namespace {

/// WriteRequest/WriteAck epoch marking recovery-stream traffic, which is
/// sequenced by the donor's stream counter rather than a chain epoch.
constexpr std::uint32_t kRecoveryEpoch = 0xffffffffu;

/// Register-backed ops per recovery chunk (keeps chunks under typical MTUs).
constexpr std::size_t kRecoveryChunkOps = 32;

telemetry::TraceCategory msg_trace_category(const pkt::SwishMessage& msg) noexcept {
  switch (static_cast<pkt::MsgType>(msg.index() + 1)) {
    case pkt::MsgType::kWriteRequest:
    case pkt::MsgType::kWriteAck:
      return telemetry::kTraceProtoChain;
    case pkt::MsgType::kEwoUpdate:
      return telemetry::kTraceProtoEwo;
    case pkt::MsgType::kOwnRequest:
    case pkt::MsgType::kOwnGrant:
    case pkt::MsgType::kOwnUpdate:
      return telemetry::kTraceProtoOwn;
    case pkt::MsgType::kSwimPing:
    case pkt::MsgType::kSwimAck:
    case pkt::MsgType::kSwimPingReq:
    case pkt::MsgType::kMembershipUpdate:
      return telemetry::kTraceMembership;
    case pkt::MsgType::kConForward:
    case pkt::MsgType::kConPrepare:
    case pkt::MsgType::kConPromise:
    case pkt::MsgType::kConAccept:
    case pkt::MsgType::kConAccepted:
    case pkt::MsgType::kConLearn:
      return telemetry::kTraceProtoCon;
    default:
      return telemetry::kTraceProtoControl;
  }
}

const char* msg_trace_name(const pkt::SwishMessage& msg) noexcept {
  switch (static_cast<pkt::MsgType>(msg.index() + 1)) {
    case pkt::MsgType::kWriteRequest:
      return "WriteRequest";
    case pkt::MsgType::kWriteAck:
      return "WriteAck";
    case pkt::MsgType::kEwoUpdate:
      return "EwoUpdate";
    case pkt::MsgType::kHeartbeat:
      return "Heartbeat";
    case pkt::MsgType::kChainConfig:
      return "ChainConfig";
    case pkt::MsgType::kGroupConfig:
      return "GroupConfig";
    case pkt::MsgType::kReadRedirect:
      return "ReadRedirect";
    case pkt::MsgType::kOwnRequest:
      return "OwnRequest";
    case pkt::MsgType::kOwnGrant:
      return "OwnGrant";
    case pkt::MsgType::kOwnUpdate:
      return "OwnUpdate";
    case pkt::MsgType::kSwimPing:
      return "SwimPing";
    case pkt::MsgType::kSwimAck:
      return "SwimAck";
    case pkt::MsgType::kSwimPingReq:
      return "SwimPingReq";
    case pkt::MsgType::kMembershipUpdate:
      return "MembershipUpdate";
    case pkt::MsgType::kConForward:
      return "ConForward";
    case pkt::MsgType::kConPrepare:
      return "ConPrepare";
    case pkt::MsgType::kConPromise:
      return "ConPromise";
    case pkt::MsgType::kConAccept:
      return "ConAccept";
    case pkt::MsgType::kConAccepted:
      return "ConAccepted";
    case pkt::MsgType::kConLearn:
      return "ConLearn";
  }
  return "?";
}

/// Cap on the retry-reuse span cache; blunt-cleared beyond this (a cleared
/// entry only means a late retransmission starts a fresh span).
constexpr std::size_t kMaxSendSpans = 65536;

/// Idempotency identity of a message for span reuse across retransmissions:
/// (tag, id, packed principal+destination). Messages without a stable retry
/// identity (EwoUpdate mirror batches, periodic sync, heartbeats, config)
/// return nullopt — their re-flushes carry fresh content, so each
/// transmission is a distinct causal event.
std::optional<std::tuple<std::uint8_t, std::uint64_t, std::uint64_t>> send_identity(
    SwitchId dst, const pkt::SwishMessage& msg) noexcept {
  const auto d = static_cast<std::uint64_t>(dst);
  if (const auto* wr = std::get_if<pkt::WriteRequest>(&msg)) {
    return std::tuple{std::uint8_t{1}, wr->write_id,
                      (static_cast<std::uint64_t>(wr->writer) << 32) | d};
  }
  if (const auto* ack = std::get_if<pkt::WriteAck>(&msg)) {
    return std::tuple{std::uint8_t{2}, ack->write_id,
                      (static_cast<std::uint64_t>(ack->writer) << 32) | d};
  }
  if (const auto* req = std::get_if<pkt::OwnRequest>(&msg)) {
    return std::tuple{std::uint8_t{3}, req->req_id,
                      (static_cast<std::uint64_t>(req->requester) << 33) |
                          (static_cast<std::uint64_t>(req->revoke) << 32) | d};
  }
  if (const auto* grant = std::get_if<pkt::OwnGrant>(&msg)) {
    return std::tuple{std::uint8_t{4}, grant->req_id,
                      (static_cast<std::uint64_t>(grant->new_owner) << 32) | d};
  }
  // kCON retransmissions (forward retries, accept/learn repair resends) reuse
  // the first transmission's span — the content is idempotent per identity.
  if (const auto* fwd = std::get_if<pkt::ConForward>(&msg)) {
    return std::tuple{std::uint8_t{5}, fwd->req_id,
                      (static_cast<std::uint64_t>(fwd->writer) << 32) | d};
  }
  if (const auto* prep = std::get_if<pkt::ConPrepare>(&msg)) {
    return std::tuple{std::uint8_t{6}, prep->ballot,
                      (static_cast<std::uint64_t>(prep->coordinator) << 32) | d};
  }
  if (const auto* acc = std::get_if<pkt::ConAccept>(&msg)) {
    return std::tuple{std::uint8_t{7}, acc->slot, (acc->ballot << 16) | d};
  }
  if (const auto* learn = std::get_if<pkt::ConLearn>(&msg)) {
    return std::tuple{std::uint8_t{8}, learn->slot, (learn->ballot << 16) | d};
  }
  return std::nullopt;
}

}  // namespace

ShmRuntime::ShmRuntime(pisa::Switch& sw, RuntimeConfig config, NodeId controller)
    : sw_(sw), config_(config), controller_(controller), rng_(0x5115 ^ (sw.id() * 0x9e3779b9ULL)) {
  telemetry::MetricsRegistry& reg = sw.simulator().metrics();
  const std::string prefix = "shm.sw" + std::to_string(sw.id()) + ".";
  redirects_processed_ = reg.counter(prefix + "redirects_processed");
  recovery_chunks_sent_ = reg.counter(prefix + "recovery_chunks_sent");
  recovery_chunks_applied_ = reg.counter(prefix + "recovery_chunks_applied");
  recovery_bytes_ = reg.counter(prefix + "bytes_recovery");
  control_bytes_ = reg.counter(prefix + "bytes_control");
  int_bytes_ = reg.counter(prefix + "bytes_int");
  total_bytes_ = reg.counter(prefix + "bytes_total");
  int_countdown_ = config_.int_sample_every;
  spans_ = &sw.simulator().spans();
  observatory_ = &sw.simulator().observatory();
}

ShmRuntime::~ShmRuntime() = default;

// ---------------------------------------------------------------------------
// Engines
// ---------------------------------------------------------------------------

ProtocolEngine* ShmRuntime::find_engine(ConsistencyClass cls) const noexcept {
  for (const auto& e : engines_) {
    if (e->cls() == cls) return e.get();
  }
  return nullptr;
}

ProtocolEngine& ShmRuntime::engine_for_class(ConsistencyClass cls) {
  if (ProtocolEngine* existing = find_engine(cls)) return *existing;
  engines_.push_back(make_engine(cls, *this));
  ProtocolEngine& engine = *engines_.back();
  for (pkt::MsgType type : engine.message_types()) {
    registry_[static_cast<std::size_t>(type)].push_back(&engine);
  }
  if (started_) engine.start();  // engines created by migration join the tick loop
  return engine;
}

ProtocolEngine* ShmRuntime::engine_for_space(std::uint32_t space) const noexcept {
  auto it = space_engines_.find(space);
  return it == space_engines_.end() ? nullptr : it->second;
}

void ShmRuntime::add_space(const SpaceConfig& config, const std::vector<SwitchId>& replicas) {
  if (config.cls == ConsistencyClass::kEWO) {
    // EWO spaces span the full deployment (partitioning targets the rarely
    // shared, strongly-consistent state, §9).
    deployment_ = replicas;
  } else if (deployment_.empty()) {
    deployment_ = replicas;
  }
  ProtocolEngine& engine = engine_for_class(config.cls);
  engine.add_space(config, replicas);
  space_engines_[config.id] = &engine;
  // All hosts of a space register it with the shared observatory; after the
  // first registration the call is a no-op.
  observatory_->register_space(config.id, config.name, to_string(config.cls));
}

void ShmRuntime::add_remote_space(const SpaceConfig& config) {
  ProtocolEngine& engine = engine_for_class(config.cls);
  engine.add_remote_space(config);  // throws for classes without a remote path
  space_engines_[config.id] = &engine;
}

bool ShmRuntime::hosts_space(std::uint32_t space) const noexcept {
  for (const auto& e : engines_) {
    if (e->hosts_space(space)) return true;
  }
  return false;
}

void ShmRuntime::start() {
  if (config_.membership == MembershipProtocol::kSwim) {
    // Decentralized detection: no heartbeats at all; the agent probes peers
    // from this switch's own control plane (ROADMAP item 2).
    if (!membership_peers_.empty()) {
      swim_ = std::make_unique<SwimAgent>(*this, membership_peers_);
      swim_->start();
    }
  } else if (controller_ != kInvalidNode) {
    background_.push_back(sw_.start_packet_generator(config_.heartbeat_period, [this]() {
      control_bytes_ += send(
          controller_, pkt::Heartbeat{sw_.id(), static_cast<std::uint64_t>(sw_.simulator().now())});
    }));
  }
  for (const auto& e : engines_) e->start();
  started_ = true;
}

// ---------------------------------------------------------------------------
// Configuration from the controller
// ---------------------------------------------------------------------------

void ShmRuntime::set_chain(const pkt::ChainConfig& config) {
  if (config.epoch <= chain_.epoch && !chain_.chain.empty()) return;  // stale push
  chain_ = config;
  retire_recovery_if_joined(chain_.chain);
  notify_config_update();
}

void ShmRuntime::set_space_chain(std::uint32_t space, const pkt::ChainConfig& config) {
  auto& current = space_chains_[space];
  if (config.epoch <= current.epoch && !current.chain.empty()) return;
  current = config;
  retire_recovery_if_joined(config.chain);
  notify_config_update();
}

void ShmRuntime::set_group(const pkt::GroupConfig& config) {
  if (config.epoch <= group_.epoch && !group_.members.empty()) return;
  group_ = config;
  notify_config_update();
}

void ShmRuntime::retire_recovery_if_joined(const std::vector<SwitchId>& chain) {
  // A completed recovery shows up as the stream target joining the chain; the
  // donor can then retire the stream.
  if (recovery_ &&
      std::find(chain.begin(), chain.end(), recovery_->target) != chain.end()) {
    recovery_->timer.cancel();
    recovery_.reset();
    recovery_tap_ = false;
  }
}

void ShmRuntime::notify_config_update() {
  for (const auto& e : engines_) e->on_config_update();
}

const pkt::ChainConfig& ShmRuntime::chain_for(std::uint32_t space) const noexcept {
  auto it = space_chains_.find(space);
  return it == space_chains_.end() ? chain_ : it->second;
}

bool ShmRuntime::chain_contains(const pkt::ChainConfig& chain, SwitchId sw) noexcept {
  return std::find(chain.chain.begin(), chain.chain.end(), sw) != chain.chain.end();
}

bool ShmRuntime::in_chain() const noexcept { return chain_contains(chain_, sw_.id()); }

bool ShmRuntime::is_head() const noexcept {
  return !chain_.chain.empty() && chain_.chain.front() == sw_.id();
}

bool ShmRuntime::is_tail() const noexcept {
  return !chain_.chain.empty() && chain_.chain.back() == sw_.id();
}

// ---------------------------------------------------------------------------
// Transport (EngineHost)
// ---------------------------------------------------------------------------

pkt::Packet ShmRuntime::wrap(SwitchId dst, const pkt::SwishMessage& msg,
                             const telemetry::SpanContext& ctx) const {
  pkt::PacketSpec spec;
  spec.eth_src = pkt::MacAddr::for_node(sw_.id());
  spec.eth_dst = pkt::MacAddr::for_node(dst);
  spec.ip_src = net::node_ip(sw_.id());
  spec.ip_dst = net::node_ip(dst);
  spec.protocol = pkt::kProtoUdp;
  spec.src_port = pkt::kSwishPort;
  spec.dst_port = pkt::kSwishPort;
  spec.payload = pkt::encode_message(msg, ctx);
  return pkt::build_packet(spec);
}

telemetry::SpanContext ShmRuntime::outgoing_trace(SwitchId dst, const pkt::SwishMessage& msg) {
  // Fast path for the sampling-disabled steady state: nothing sampled is in
  // flight and no retransmission context is cached, so there is nothing to
  // attach and nothing to look up. Keeps the send chokepoint near-free when
  // tracing is enabled but (almost) never sampling — gated at 2% by
  // bench_throughput --overhead-gate.
  if (!active_trace_.sampled() && send_spans_.empty()) return {};
  const auto identity = send_identity(dst, msg);
  if (identity) {
    auto it = send_spans_.find(*identity);
    if (it != send_spans_.end()) return it->second;  // retransmission: reuse
  }
  if (!active_trace_.sampled()) return {};
  const telemetry::SpanContext ctx =
      spans_->record_instant(active_trace_, sw_.id(), msg_trace_name(msg));
  if (identity && ctx.sampled()) {
    if (send_spans_.size() >= kMaxSendSpans) send_spans_.clear();
    send_spans_.emplace(*identity, ctx);
  }
  return ctx;
}

std::size_t ShmRuntime::send(SwitchId dst, const pkt::SwishMessage& msg) {
  telemetry::SpanContext trace_ctx;
  // Inline what outgoing_trace's fast path would check, so the steady state
  // with tracing enabled but nothing sampled skips the call entirely.
  if (spans_->enabled() && (active_trace_.sampled() || !send_spans_.empty())) {
    trace_ctx = outgoing_trace(dst, msg);
  }
  pkt::Packet packet = wrap(dst, msg, trace_ctx);
  // INT-MD sampling of protocol traffic: 1-in-N sends get the telemetry
  // trailer. The trailer bytes are charged to the bytes_int class (not the
  // message's own class — the caller-visible size excludes them), keeping
  // the per-class counters summing to bytes_total exactly.
  std::size_t int_overhead = 0;
  if (config_.int_sample_every > 0 && --int_countdown_ == 0) {
    int_countdown_ = config_.int_sample_every;
    packet = pkt::with_int_trailer(
        packet, static_cast<std::uint8_t>(std::min<unsigned>(config_.int_hop_cap, 255u)));
    int_overhead = pkt::kIntTrailerBytes;
    int_bytes_ += int_overhead;
  }
  const std::size_t n = packet.size();
  total_bytes_ += n;
  // Per-class protocol-message tracing: every protocol byte leaves through
  // here, so one probe covers all four engines. The mask pre-check keeps the
  // category/name switches off the path when tracing is disabled.
  telemetry::Tracer& tracer = sw_.simulator().tracer();
  if (tracer.mask() != 0) {
    tracer.record(msg_trace_category(msg), sw_.id(), msg_trace_name(msg), dst, n);
  }
  sw_.send_to_node(dst, std::move(packet), rng_.next());
  return n - int_overhead;
}

std::size_t ShmRuntime::send_control(SwitchId dst, const pkt::SwishMessage& msg) {
  const std::size_t n = send(dst, msg);
  control_bytes_ += n;
  return n;
}

void ShmRuntime::report_drop(telemetry::DropReason reason, std::uint64_t detail) {
  // Protocol-level drops are packetless (the operation died before or after
  // its wire life), so no INT stack rides along — the reason + site suffice.
  sw_.report_drop(reason, nullptr, detail);
}

void ShmRuntime::every(TimeNs period, std::function<void()> tick) {
  background_.push_back(sw_.start_packet_generator(period, std::move(tick)));
}

// ---------------------------------------------------------------------------
// Protocol ingress
// ---------------------------------------------------------------------------

bool ShmRuntime::handle_protocol_packet(pisa::PacketContext& ctx) {
  if (!ctx.parsed || !ctx.parsed->udp || ctx.parsed->udp->dst_port != pkt::kSwishPort) {
    return false;
  }
  // Protocol packets terminate here (transit forwarding already happened in
  // ShmProgram::process), so this is their INT sink. No strip needed:
  // decode_message ignores the trailing trailer bytes.
  if (sw_.int_enabled()) sw_.record_int_sink(ctx.packet);
  telemetry::SpanContext wire_trace;
  auto msg = pkt::decode_message(ctx.packet.l4_payload(*ctx.parsed), &wire_trace);
  if (!msg) {
    // Malformed protocol packet: drop, but with attribution.
    sw_.report_drop(telemetry::DropReason::kParseError, &ctx.packet);
    return true;
  }

  // The carried trace context is active for the whole dispatch, so every
  // span recorded below — and every send a handler triggers — continues the
  // sender's causal chain.
  ActiveTraceScope trace_scope(*this, wire_trace);

  // Cross-engine machinery handled at the runtime level: the recovery-stream
  // transport (which reuses the WriteRequest/WriteAck frames under
  // kRecoveryEpoch), configuration pushes, and redirected reads.
  if (const auto* wr = std::get_if<pkt::WriteRequest>(&*msg)) {
    if (wr->snapshot_replay || wr->epoch == kRecoveryEpoch) {
      on_recovery_chunk(*wr);
      return true;
    }
  } else if (const auto* ack = std::get_if<pkt::WriteAck>(&*msg)) {
    if (ack->epoch == kRecoveryEpoch) {
      on_recovery_ack(ack->write_id);
      return true;
    }
  } else if (const auto* cc = std::get_if<pkt::ChainConfig>(&*msg)) {
    set_chain(*cc);
    return true;
  } else if (const auto* gc = std::get_if<pkt::GroupConfig>(&*msg)) {
    set_group(*gc);
    return true;
  } else if (const auto* rr = std::get_if<pkt::ReadRedirect>(&*msg)) {
    on_read_redirect(*rr);
    return true;
  } else if (std::holds_alternative<pkt::Heartbeat>(*msg)) {
    return true;  // heartbeats are consumed by the controller node, not switches
  } else if (const auto* ping = std::get_if<pkt::SwimPing>(&*msg)) {
    if (swim_) swim_->on_ping(*ping);
    return true;
  } else if (const auto* ack = std::get_if<pkt::SwimAck>(&*msg)) {
    if (swim_) swim_->on_ack(*ack);
    return true;
  } else if (const auto* req = std::get_if<pkt::SwimPingReq>(&*msg)) {
    if (swim_) swim_->on_ping_req(*req);
    return true;
  } else if (const auto* update = std::get_if<pkt::MembershipUpdate>(&*msg)) {
    if (swim_) swim_->on_update(*update);
    return true;
  }

  // Everything else goes through the message-type registry. Multiple engines
  // may share a type (SRO and ERO both speak the chain protocol); the first
  // engine that claims the message — by the space it names — consumes it.
  for (ProtocolEngine* engine : registry_[msg->index() + 1]) {
    if (engine->handle_message(*msg)) break;
  }
  return true;
}

// ---------------------------------------------------------------------------
// NF-facing register API (§5)
// ---------------------------------------------------------------------------

ReadStatus ShmRuntime::read(pisa::PacketContext* ctx, std::uint32_t space, std::uint64_t key,
                            std::uint64_t& value) {
  ProtocolEngine* engine = engine_for_space(space);
  if (engine == nullptr) return ReadStatus::kMiss;
  return engine->read(ctx, space, key, value);
}

std::optional<std::uint64_t> ShmRuntime::read_lpm(std::uint32_t space, std::uint64_t key) {
  ProtocolEngine* engine = engine_for_space(space);
  if (engine == nullptr) return std::nullopt;
  return engine->read_lpm(space, key);
}

void ShmRuntime::write(std::vector<pkt::WriteOp> ops, pkt::Packet output,
                       std::function<void(pkt::Packet&&)> release) {
  ProtocolEngine* engine = ops.empty() ? nullptr : engine_for_space(ops.front().space);
  // Legacy behaviour: a chain write naming an undeclared space is still
  // submitted (and times out against an empty chain) rather than dropped.
  if (engine == nullptr) engine = &engine_for_class(ConsistencyClass::kSRO);
  engine->write(std::move(ops), std::move(output), std::move(release));
}

bool ShmRuntime::update(std::uint32_t space, std::uint64_t key, std::int64_t delta,
                        UpdateDone done) {
  ProtocolEngine* engine = engine_for_space(space);
  return engine != nullptr && engine->update(space, key, delta, std::move(done));
}

bool ShmRuntime::write_txn(std::vector<pkt::WriteOp> ops, pkt::Packet output,
                           std::function<void(pkt::Packet&&)> release) {
  if (ops.empty()) return false;
  ProtocolEngine* engine = engine_for_space(ops.front().space);
  if (engine == nullptr) return false;
  // One engine sequences the whole batch or the transaction is refused — a
  // cross-engine batch has no single point of atomicity.
  for (const auto& op : ops) {
    if (engine_for_space(op.space) != engine) return false;
  }
  engine->write(std::move(ops), std::move(output), std::move(release));
  return true;
}

ReadStatus ShmRuntime::sro_read(pisa::PacketContext& ctx, std::uint32_t space, std::uint64_t key,
                                std::uint64_t& value) {
  return read(&ctx, space, key, value);
}

void ShmRuntime::sro_write(std::vector<pkt::WriteOp> ops, pkt::Packet output,
                           std::function<void(pkt::Packet&&)> release) {
  write(std::move(ops), std::move(output), std::move(release));
}

// The legacy ewo_* wrappers dispatch by SPACE, not by class, so an NF keeps
// working when its space is overridden to another engine (e.g. swish_sim's
// --space NAME=own): EWO spaces take the fast local path, anything else goes
// through the uniform read/write/update operations.

namespace {

EwoEngine* as_ewo(ProtocolEngine* engine) noexcept { return dynamic_cast<EwoEngine*>(engine); }

}  // namespace

std::uint64_t ShmRuntime::ewo_read(std::uint32_t space, std::uint64_t key) {
  ProtocolEngine* engine = engine_for_space(space);
  if (auto* ewo = as_ewo(engine)) return ewo->local_read(space, key);
  std::uint64_t value = 0;
  if (engine != nullptr) engine->read(nullptr, space, key, value);
  return value;
}

void ShmRuntime::ewo_write(std::uint32_t space, std::uint64_t key, std::uint64_t value) {
  ProtocolEngine* engine = engine_for_space(space);
  if (auto* ewo = as_ewo(engine)) {
    ewo->local_write(space, key, value);
  } else if (engine != nullptr) {
    engine->write({{space, key, value}}, pkt::Packet{}, [](pkt::Packet&&) {});
  }
}

std::uint64_t ShmRuntime::ewo_add(std::uint32_t space, std::uint64_t key, std::int64_t delta) {
  ProtocolEngine* engine = engine_for_space(space);
  if (auto* ewo = as_ewo(engine)) return ewo->add(space, key, delta);
  if (engine == nullptr) return 0;
  // Synchronous when this switch can apply locally (e.g. OWN owner); returns
  // 0 while the op is deferred behind an ownership migration — the add still
  // lands once the grant arrives.
  auto result = std::make_shared<std::uint64_t>(0);
  engine->update(space, key, delta, [result](std::uint64_t v) { *result = v; });
  return *result;
}

std::uint64_t ShmRuntime::ewo_set_add(std::uint32_t space, std::uint64_t key,
                                      std::uint64_t bits) {
  ProtocolEngine* engine = engine_for_space(space);
  if (auto* ewo = as_ewo(engine)) return ewo->set_add(space, key, bits);
  if (engine == nullptr) return 0;
  // Best-effort OR through the uniform API for non-CRDT engines.
  std::uint64_t current = 0;
  engine->read(nullptr, space, key, current);
  const std::uint64_t merged = current | bits;
  if (merged != current) {
    engine->write({{space, key, merged}}, pkt::Packet{}, [](pkt::Packet&&) {});
  }
  return merged;
}

void ShmRuntime::on_read_redirect(const pkt::ReadRedirect& msg) {
  ++redirects_processed_;
  if (!nf_reentry_) return;
  // Serving the redirected packet continues the origin's causal chain: any
  // write the re-run NF performs parents under this span.
  telemetry::SpanContext serve;
  if (active_trace_.sampled()) {
    serve = spans_->record_instant(active_trace_, sw_.id(), "redirect_serve");
  }
  ActiveTraceScope scope(*this, serve.sampled() ? serve : active_trace_);
  pisa::PacketContext ctx{sw_, pkt::Packet(msg.original_packet), nullptr,
                          net::kInvalidPort, /*from_edge=*/true, /*recirc_count=*/1};
  ctx.parsed = ctx.packet.parsed();
  authoritative_ = true;
  nf_reentry_(ctx);
  authoritative_ = false;
}

// ---------------------------------------------------------------------------
// Recovery (§6.3): the runtime is the stream transport; engines contribute
// snapshots and apply replayed ops.
// ---------------------------------------------------------------------------

void ShmRuntime::start_recovery_stream(SwitchId target, std::function<void()> done,
                                       std::optional<std::uint32_t> space_filter) {
  recovery_.emplace();
  recovery_->target = target;
  recovery_->space_filter = space_filter;
  recovery_->done = std::move(done);
  recovery_->snapshot_epoch =
      (static_cast<std::uint32_t>(sw_.id()) << 16) | (++recovery_epoch_counter_ & 0xffffu);
  // The freeze point and the tap enable are the same instant: sparse spaces
  // pin an O(1) CoW snapshot, dense spaces collect eagerly inside
  // snapshot_source(). Every write committed after this line reaches the
  // target exactly once — through the live tap, never through the snapshot —
  // so there is no window where a commit lands in neither.
  for (const auto& e : engines_) {
    recovery_->sources.push_back(e->snapshot_source(space_filter));
  }
  recovery_tap_ = true;
  // Streaming runs on the control plane (§6.3): chunks are pulled from the
  // frozen sources one at a time and replayed through the normal data-plane
  // protocol as seq-guarded writes.
  sw_.control_plane().submit([this]() {
    if (!recovery_) return;
    recovery_send_next();
  });
}

void ShmRuntime::recovery_tap(const std::vector<pkt::WriteOp>& ops,
                              const std::vector<SeqNum>& seqs) {
  // While a recovery stream is active, every commit is also fed to the
  // recovering switch, in order, behind the snapshot (§6.3).
  if (!recovery_ || !recovery_tap_) return;
  if (recovery_->space_filter &&
      (ops.empty() || ops.front().space != *recovery_->space_filter)) {
    return;
  }
  if (recovery_->draining) {
    // The snapshot is still streaming; this commit post-dates the freeze
    // point, so it must follow the last snapshot chunk. Buffer it raw —
    // write_ids are assigned at enqueue time so stream order stays
    // snapshot < backlog < live taps.
    recovery_->tap_backlog.push_back({ops, seqs});
    return;
  }
  recovery_enqueue(ops, seqs);
  recovery_send_next();
}

void ShmRuntime::recovery_enqueue(std::vector<pkt::WriteOp> ops, std::vector<SeqNum> seqs) {
  pkt::WriteRequest chunk;
  chunk.epoch = kRecoveryEpoch;
  chunk.writer = sw_.id();
  chunk.snapshot_replay = true;
  chunk.snapshot_epoch = recovery_->snapshot_epoch;
  chunk.write_id = recovery_->next_stream_seq++;
  chunk.ops = std::move(ops);
  chunk.seqs = std::move(seqs);
  recovery_->queue.push_back(std::move(chunk));
}

bool ShmRuntime::recovery_refill() {
  RecoveryStream& rs = *recovery_;
  if (!rs.queue.empty()) return true;
  if (!rs.draining) return false;
  // Pull one chunk's worth of ops from the frozen sources. A source that
  // reports exhaustion is destroyed immediately, releasing its CoW pin (and
  // the nodes it kept alive) as early as possible.
  std::vector<SnapshotOp> snap;
  while (!rs.sources.empty() && snap.size() < kRecoveryChunkOps) {
    if (!rs.sources.front()->next(kRecoveryChunkOps - snap.size(), snap)) {
      rs.sources.erase(rs.sources.begin());
    }
  }
  if (!snap.empty()) {
    std::vector<pkt::WriteOp> ops;
    std::vector<SeqNum> seqs;
    ops.reserve(snap.size());
    seqs.reserve(snap.size());
    for (const auto& entry : snap) {
      ops.push_back(entry.op);
      seqs.push_back(entry.seq);
    }
    recovery_enqueue(std::move(ops), std::move(seqs));
  }
  if (rs.sources.empty()) {
    rs.draining = false;
    // Commits tapped during the drain go behind the snapshot, in tap order.
    while (!rs.tap_backlog.empty()) {
      recovery_enqueue(std::move(rs.tap_backlog.front().ops),
                       std::move(rs.tap_backlog.front().seqs));
      rs.tap_backlog.pop_front();
    }
  }
  return !rs.queue.empty();
}

void ShmRuntime::recovery_send_next() {
  if (!recovery_ || recovery_->awaiting_ack != 0) return;
  if (!recovery_refill()) {
    // Snapshot fully streamed and every chunk acknowledged: recovery is
    // complete. The stream stays alive to tap subsequent commits until the
    // controller retires it at the epoch switch.
    if (recovery_->done) {
      auto cb = std::move(recovery_->done);
      recovery_->done = nullptr;
      cb();
    }
    return;
  }
  const pkt::WriteRequest& chunk = recovery_->queue.front();
  recovery_->awaiting_ack = chunk.write_id;
  recovery_->retries = 0;
  ++recovery_chunks_sent_;
  // Recovery chunks root their own causal chains (there is no originating
  // write); retransmissions reuse the first transmission's span through the
  // send-identity cache like any other idempotent frame.
  telemetry::SpanContext root;
  if (spans_->enabled() && !active_trace_.sampled()) {
    root = spans_->maybe_start_trace();
    if (root.sampled()) {
      const TimeNs t = spans_->now();
      spans_->record({root.trace_id, root.span_id, 0, sw_.id(), "recovery_chunk", t, t, 0, 0,
                      chunk.write_id});
    }
  }
  ActiveTraceScope scope(*this, root.sampled() ? root : active_trace_);
  recovery_bytes_ += send(recovery_->target, chunk);
  arm_recovery_timer(chunk.write_id);
}

void ShmRuntime::arm_recovery_timer(std::uint64_t expect) {
  recovery_->timer =
      sw_.control_plane().schedule_after(config_.write_retry_timeout, [this, expect]() {
        if (!recovery_ || recovery_->awaiting_ack != expect) return;
        if (++recovery_->retries > config_.max_write_retries) {
          // Target unreachable: abandon the stream; the controller restarts
          // recovery if the target is still alive.
          sw_.report_drop(telemetry::DropReason::kRecoveryAbandoned, nullptr,
                          recovery_->target);
          recovery_.reset();
          recovery_tap_ = false;
          return;
        }
        ++recovery_chunks_sent_;
        recovery_bytes_ += send(recovery_->target, recovery_->queue.front());
        arm_recovery_timer(expect);
      });
}

void ShmRuntime::on_recovery_ack(std::uint64_t stream_seq) {
  if (!recovery_ || recovery_->awaiting_ack != stream_seq) return;
  recovery_->timer.cancel();
  recovery_->awaiting_ack = 0;
  recovery_->queue.pop_front();
  // Refills lazily from the snapshot sources; fires `done` once everything
  // is drained and acknowledged.
  recovery_send_next();
}

void ShmRuntime::on_recovery_chunk(const pkt::WriteRequest& msg) {
  if (msg.snapshot_epoch != 0 && msg.snapshot_epoch != last_recovery_epoch_) {
    // A different donor stream (restarted recovery, or a second migration
    // from another donor): its write_ids start over from 1, so the cursor
    // must restart with them or every chunk would look like a duplicate.
    last_recovery_epoch_ = msg.snapshot_epoch;
    last_recovery_applied_ = 0;
  }
  if (msg.write_id == last_recovery_applied_ + 1) {
    if (active_trace_.sampled()) {
      spans_->record_instant(active_trace_, sw_.id(), "recovery_apply", 0, msg.write_id);
    }
    for (std::size_t i = 0; i < msg.ops.size(); ++i) {
      // Stream order replays the donor's apply order; each op goes to the
      // engine serving its space.
      if (ProtocolEngine* engine = engine_for_space(msg.ops[i].space)) {
        engine->apply_recovery_op(msg.ops[i], i < msg.seqs.size() ? msg.seqs[i] : 0);
      }
    }
    last_recovery_applied_ = msg.write_id;
    ++recovery_chunks_applied_;
  } else if (msg.write_id > last_recovery_applied_ + 1) {
    return;  // out-of-order future chunk: drop; stop-and-wait resends in order
  }
  // Duplicate or just-applied chunk: (re-)ack.
  recovery_bytes_ +=
      send(msg.writer, pkt::WriteAck{kRecoveryEpoch, msg.writer, msg.write_id, {}, {}});
}

void ShmRuntime::reset_state() {
  for (const auto& e : engines_) e->reset();
  if (swim_) swim_->reset();
  last_recovery_applied_ = 0;
  last_recovery_epoch_ = 0;
  recovery_.reset();
  recovery_tap_ = false;
  // A replacement switch also forgets its configuration; the controller's
  // next push (any epoch) is accepted.
  chain_ = {};
  group_ = {};
}

// ---------------------------------------------------------------------------
// Introspection
// ---------------------------------------------------------------------------

std::size_t ShmRuntime::cp_buffered_packets() const noexcept {
  std::size_t n = 0;
  for (const auto& e : engines_) {
    if (const auto* chain = dynamic_cast<const ChainEngine*>(e.get())) {
      n += chain->cp_buffered_packets();
    }
  }
  return n;
}

const SroSpaceState* ShmRuntime::sro_space(std::uint32_t id) const {
  for (const auto& e : engines_) {
    if (const auto* chain = dynamic_cast<const ChainEngine*>(e.get())) {
      if (const SroSpaceState* sp = chain->space_state(id)) return sp;
    }
  }
  return nullptr;
}

const EwoSpaceState* ShmRuntime::ewo_space(std::uint32_t id) const {
  const auto* engine = dynamic_cast<const EwoEngine*>(find_engine(ConsistencyClass::kEWO));
  return engine == nullptr ? nullptr : engine->space_state(id);
}

const OwnSpaceState* ShmRuntime::own_space(std::uint32_t id) const {
  const auto* engine = dynamic_cast<const OwnerEngine*>(find_engine(ConsistencyClass::kOWN));
  return engine == nullptr ? nullptr : engine->space_state(id);
}

const SroSpaceState* ShmRuntime::con_space(std::uint32_t id) const {
  const auto* engine =
      dynamic_cast<const ConsensusEngine*>(find_engine(ConsistencyClass::kCON));
  return engine == nullptr ? nullptr : engine->space_state(id);
}

ShmRuntime::Stats ShmRuntime::stats() const {
  Stats s;
  for (const auto& e : engines_) {
    if (const auto* chain = dynamic_cast<const ChainEngine*>(e.get())) {
      const ChainEngine::Stats& c = chain->chain_stats();
      s.writes_submitted += c.writes_submitted;
      s.writes_committed += c.writes_committed;
      s.write_retries += c.write_retries;
      s.writes_failed += c.writes_failed;
      s.writes_rejected += c.writes_rejected;
      s.chain_requests_seen += c.chain_requests_seen;
      s.chain_gap_drops += c.chain_gap_drops;
      s.chain_stale_epoch += c.chain_stale_epoch;
      s.reads_local += c.reads_local;
      s.reads_redirected += c.reads_redirected;
      s.bytes_write_path += c.bytes_write;
      s.bytes_redirect += c.bytes_redirect;
      s.write_latency.merge(c.write_latency);
    } else if (const auto* ewo = dynamic_cast<const EwoEngine*>(e.get())) {
      const EwoEngine::Stats& w = ewo->ewo_stats();
      s.ewo_reads += w.reads;
      s.ewo_local_writes += w.local_writes;
      s.ewo_updates_sent += w.updates_sent;
      s.ewo_updates_received += w.updates_received;
      s.ewo_entries_merged += w.entries_merged;
      s.sync_rounds += w.sync_rounds;
      s.sync_entries_sent += w.sync_entries_sent;
      s.bytes_ewo += w.bytes;
    } else if (const auto* own = dynamic_cast<const OwnerEngine*>(e.get())) {
      const OwnerEngine::Stats& o = own->own_stats();
      s.own_local_writes += o.local_writes;
      s.own_acquisitions += o.acquisitions_completed;
      s.own_revokes += o.revokes_served;
      s.bytes_own += o.bytes;
    } else if (const auto* con = dynamic_cast<const ConsensusEngine*>(e.get())) {
      const ConsensusEngine::Stats& c = con->con_stats();
      s.writes_submitted += c.writes_submitted;
      s.writes_committed += c.writes_committed;
      s.write_retries += c.forward_retries;
      s.writes_failed += c.writes_failed;
      s.writes_rejected += c.writes_rejected;
      s.reads_local += c.reads_local;
      s.reads_redirected += c.reads_redirected;
      s.con_slots_applied += c.slots_applied;
      s.con_elections += c.elections_completed;
      s.bytes_con += c.bytes;
      s.write_latency.merge(c.commit_latency);
    }
  }
  s.redirects_processed = redirects_processed_;
  s.recovery_chunks_sent = recovery_chunks_sent_;
  s.recovery_chunks_applied = recovery_chunks_applied_;
  // The recovery stream reuses the write-path frames; its bytes belong there.
  s.bytes_write_path += recovery_bytes_;
  s.bytes_control = control_bytes_;
  s.bytes_int = int_bytes_;
  s.bytes_total = total_bytes_;
  return s;
}

// ---------------------------------------------------------------------------
// ShmProgram
// ---------------------------------------------------------------------------

ShmProgram::ShmProgram(ShmRuntime& runtime, std::unique_ptr<NfApp> nf)
    : runtime_(runtime), nf_(std::move(nf)) {
  runtime_.set_nf_reentry([this](pisa::PacketContext& ctx) {
    if (nf_) nf_->process(ctx, runtime_);
  });
}

void ShmProgram::process(pisa::PacketContext& ctx) {
  // Protocol packets in transit (multi-hop topologies: the chain successor or
  // the controller may not be a direct neighbour) are forwarded toward their
  // destination switch, not consumed here.
  if (ctx.parsed && ctx.parsed->ipv4 && ctx.parsed->udp &&
      ctx.parsed->udp->dst_port == pkt::kSwishPort &&
      (ctx.parsed->ipv4->dst.value() >> 24) == 10) {
    const NodeId dst = ctx.parsed->ipv4->dst.value() & 0x00ffffff;
    if (dst != runtime_.self()) {
      const auto hash = pkt::FlowKey::from(*ctx.parsed).hash();
      ctx.sw.send_to_node(dst, std::move(ctx.packet), hash, ctx.recirc_count);
      return;
    }
  }
  if (runtime_.handle_protocol_packet(ctx)) return;
  if (nf_) nf_->process(ctx, runtime_);
}

}  // namespace swish::shm
