#include "swishmem/runtime.hpp"

#include <algorithm>

#include "common/log.hpp"
#include "net/topology.hpp"
#include "swishmem/version.hpp"

namespace swish::shm {
namespace {

/// WriteRequest/WriteAck epoch marking recovery-stream traffic, which is
/// sequenced by the donor's stream counter rather than a chain epoch.
constexpr std::uint32_t kRecoveryEpoch = 0xffffffffu;

/// Register-backed ops per recovery chunk (keeps chunks under typical MTUs).
constexpr std::size_t kRecoveryChunkOps = 32;

}  // namespace

ShmRuntime::ShmRuntime(pisa::Switch& sw, RuntimeConfig config, NodeId controller)
    : sw_(sw), config_(config), controller_(controller), rng_(0x5115 ^ (sw.id() * 0x9e3779b9ULL)) {}

void ShmRuntime::add_space(const SpaceConfig& config, const std::vector<SwitchId>& replicas) {
  space_configs_.push_back(config);
  if (config.cls == ConsistencyClass::kEWO) {
    // EWO spaces span the full deployment (partitioning targets the rarely
    // shared, strongly-consistent state, §9).
    deployment_ = replicas;
    ewo_spaces_.emplace(config.id,
                        std::make_unique<EwoSpaceState>(sw_, config, replicas, sw_.id()));
  } else {
    if (deployment_.empty()) deployment_ = replicas;
    sro_spaces_.emplace(config.id, std::make_unique<SroSpaceState>(sw_, config));
    remote_spaces_.erase(config.id);  // migration: this switch became a member
  }
}

void ShmRuntime::add_remote_space(const SpaceConfig& config) {
  if (config.cls == ConsistencyClass::kEWO) {
    throw std::invalid_argument("add_remote_space: EWO spaces cannot be remote");
  }
  remote_spaces_.emplace(config.id, config);
}

bool ShmRuntime::hosts_space(std::uint32_t space) const noexcept {
  return sro_spaces_.contains(space) || ewo_spaces_.contains(space);
}

void ShmRuntime::start() {
  if (controller_ != kInvalidNode) {
    background_.push_back(sw_.start_packet_generator(config_.heartbeat_period, [this]() {
      send_msg(controller_,
               pkt::Heartbeat{sw_.id(), static_cast<std::uint64_t>(sw_.simulator().now())});
    }));
  }
  if (!ewo_spaces_.empty()) {
    background_.push_back(
        sw_.start_packet_generator(config_.sync_period, [this]() { periodic_sync(); }));
    background_.push_back(sw_.start_packet_generator(config_.mirror_flush_interval,
                                                     [this]() { flush_mirror_buffer(); }));
  }
}

void ShmRuntime::set_chain(const pkt::ChainConfig& config) {
  if (config.epoch <= chain_.epoch && !chain_.chain.empty()) return;  // stale push
  chain_ = config;
  // A completed recovery shows up as the stream target joining the chain; the
  // donor can then retire the stream.
  if (recovery_ &&
      std::find(chain_.chain.begin(), chain_.chain.end(), recovery_->target) !=
          chain_.chain.end()) {
    recovery_->timer.cancel();
    recovery_.reset();
    recovery_tap_ = false;
  }
}

void ShmRuntime::set_space_chain(std::uint32_t space, const pkt::ChainConfig& config) {
  auto& current = space_chains_[space];
  if (config.epoch <= current.epoch && !current.chain.empty()) return;
  current = config;
  if (recovery_ &&
      std::find(config.chain.begin(), config.chain.end(), recovery_->target) !=
          config.chain.end()) {
    recovery_->timer.cancel();
    recovery_.reset();
    recovery_tap_ = false;
  }
}

const pkt::ChainConfig& ShmRuntime::chain_for(std::uint32_t space) const noexcept {
  auto it = space_chains_.find(space);
  return it == space_chains_.end() ? chain_ : it->second;
}

void ShmRuntime::set_group(const pkt::GroupConfig& config) {
  if (config.epoch <= group_.epoch && !group_.members.empty()) return;
  group_ = config;
}

bool ShmRuntime::chain_contains(const pkt::ChainConfig& chain, SwitchId sw) noexcept {
  return std::find(chain.chain.begin(), chain.chain.end(), sw) != chain.chain.end();
}

bool ShmRuntime::in_chain() const noexcept { return chain_contains(chain_, sw_.id()); }

bool ShmRuntime::is_head() const noexcept {
  return !chain_.chain.empty() && chain_.chain.front() == sw_.id();
}

bool ShmRuntime::is_tail() const noexcept {
  return !chain_.chain.empty() && chain_.chain.back() == sw_.id();
}

SwitchId ShmRuntime::chain_successor(const pkt::ChainConfig& chain) const noexcept {
  auto it = std::find(chain.chain.begin(), chain.chain.end(), sw_.id());
  if (it == chain.chain.end() || it + 1 == chain.chain.end()) return kInvalidNode;
  return *(it + 1);
}

const SroSpaceState* ShmRuntime::sro_space(std::uint32_t id) const {
  auto it = sro_spaces_.find(id);
  return it == sro_spaces_.end() ? nullptr : it->second.get();
}

const EwoSpaceState* ShmRuntime::ewo_space(std::uint32_t id) const {
  auto it = ewo_spaces_.find(id);
  return it == ewo_spaces_.end() ? nullptr : it->second.get();
}

// ---------------------------------------------------------------------------
// Transport
// ---------------------------------------------------------------------------

pkt::Packet ShmRuntime::wrap(SwitchId dst, const pkt::SwishMessage& msg) const {
  pkt::PacketSpec spec;
  spec.eth_src = pkt::MacAddr::for_node(sw_.id());
  spec.eth_dst = pkt::MacAddr::for_node(dst);
  spec.ip_src = net::node_ip(sw_.id());
  spec.ip_dst = net::node_ip(dst);
  spec.protocol = pkt::kProtoUdp;
  spec.src_port = pkt::kSwishPort;
  spec.dst_port = pkt::kSwishPort;
  spec.payload = pkt::encode_message(msg);
  return pkt::build_packet(spec);
}

void ShmRuntime::send_msg(SwitchId dst, const pkt::SwishMessage& msg) {
  pkt::Packet packet = wrap(dst, msg);
  const std::size_t n = packet.size();
  if (std::holds_alternative<pkt::WriteRequest>(msg) ||
      std::holds_alternative<pkt::WriteAck>(msg)) {
    stats_.bytes_write_path += n;
  } else if (std::holds_alternative<pkt::EwoUpdate>(msg)) {
    stats_.bytes_ewo += n;
  } else if (std::holds_alternative<pkt::ReadRedirect>(msg)) {
    stats_.bytes_redirect += n;
  }
  sw_.send_to_node(dst, std::move(packet), rng_.next());
}

void ShmRuntime::multicast_msg(const std::vector<SwitchId>& dsts, const pkt::SwishMessage& msg) {
  for (SwitchId dst : dsts) {
    if (dst == sw_.id()) continue;
    send_msg(dst, msg);
  }
}

bool ShmRuntime::handle_protocol_packet(pisa::PacketContext& ctx) {
  if (!ctx.parsed || !ctx.parsed->udp || ctx.parsed->udp->dst_port != pkt::kSwishPort) {
    return false;
  }
  auto msg = pkt::decode_message(ctx.packet.l4_payload(*ctx.parsed));
  if (!msg) return true;  // malformed protocol packet: drop
  std::visit(
      [this](auto&& m) {
        using T = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<T, pkt::WriteRequest>) {
          on_write_request(std::move(m));
        } else if constexpr (std::is_same_v<T, pkt::WriteAck>) {
          on_write_ack(m);
        } else if constexpr (std::is_same_v<T, pkt::EwoUpdate>) {
          on_ewo_update(m);
        } else if constexpr (std::is_same_v<T, pkt::ReadRedirect>) {
          on_read_redirect(m);
        } else if constexpr (std::is_same_v<T, pkt::ChainConfig>) {
          set_chain(m);
        } else if constexpr (std::is_same_v<T, pkt::GroupConfig>) {
          set_group(m);
        } else {
          // Heartbeats are consumed by the controller node, not by switches.
        }
      },
      std::move(*msg));
  return true;
}

// ---------------------------------------------------------------------------
// SRO/ERO: writer side (§6.1)
// ---------------------------------------------------------------------------

void ShmRuntime::sro_write(std::vector<pkt::WriteOp> ops, pkt::Packet output,
                           std::function<void(pkt::Packet&&)> release) {
  ++stats_.writes_submitted;
  if (pending_writes_.size() >= config_.cp_buffer_limit) {
    ++stats_.writes_rejected;
    return;
  }
  const std::uint64_t id = (static_cast<std::uint64_t>(sw_.id()) << 40) | ++next_write_id_;
  PendingWrite pw;
  pw.ops = std::move(ops);
  pw.output = std::move(output);
  pw.release = std::move(release);
  pw.submit_time = sw_.simulator().now();
  pending_writes_.emplace(id, std::move(pw));
  // The control plane buffers P' and issues the write request (§6.1).
  const bool accepted = sw_.control_plane().submit([this, id]() {
    send_write_request(id);
    arm_retry(id);
  });
  if (!accepted) {
    pending_writes_.erase(id);
    ++stats_.writes_rejected;
  }
}

void ShmRuntime::send_write_request(std::uint64_t write_id) {
  auto it = pending_writes_.find(write_id);
  if (it == pending_writes_.end()) return;
  if (it->second.ops.empty()) return;
  const pkt::ChainConfig& chain = chain_for(it->second.ops.front().space);
  if (chain.chain.empty()) return;  // no chain configured yet; retry later
  pkt::WriteRequest req;
  req.epoch = chain.epoch;
  req.writer = sw_.id();
  req.write_id = write_id;
  req.ops = it->second.ops;
  send_msg(chain.chain.front(), req);
}

void ShmRuntime::arm_retry(std::uint64_t write_id) {
  auto it = pending_writes_.find(write_id);
  if (it == pending_writes_.end()) return;
  it->second.retry_timer =
      sw_.control_plane().schedule_after(config_.write_retry_timeout, [this, write_id]() {
        auto pit = pending_writes_.find(write_id);
        if (pit == pending_writes_.end()) return;  // already committed
        if (++pit->second.retries > config_.max_write_retries) {
          ++stats_.writes_failed;
          pending_writes_.erase(pit);
          return;
        }
        ++stats_.write_retries;
        send_write_request(write_id);
        arm_retry(write_id);
      });
}

// ---------------------------------------------------------------------------
// SRO/ERO: chain side (§6.1)
// ---------------------------------------------------------------------------

bool ShmRuntime::ops_table_backed(const std::vector<pkt::WriteOp>& ops) const {
  for (const auto& op : ops) {
    auto it = sro_spaces_.find(op.space);
    if (it != sro_spaces_.end() && it->second->config().table_backed) return true;
  }
  return false;
}

void ShmRuntime::on_write_request(pkt::WriteRequest msg) {
  ++stats_.chain_requests_seen;
  if (msg.snapshot_replay) {
    on_recovery_chunk(msg);
    return;
  }
  if (msg.ops.empty()) return;
  const pkt::ChainConfig& chain = chain_for(msg.ops.front().space);
  if (msg.epoch != chain.epoch) {
    ++stats_.chain_stale_epoch;
    return;  // writer will retry with the current epoch
  }
  if (!chain_contains(chain, sw_.id())) return;
  if (msg.seqs.empty()) {
    if (chain.chain.front() != sw_.id()) return;  // misrouted; dropped, retried
    head_process(std::move(msg));
  } else {
    relay_process(std::move(msg));
  }
}

void ShmRuntime::head_process(pkt::WriteRequest msg) {
  auto work = [this, msg = std::move(msg)]() mutable {
    auto dedup = head_assigned_.find(msg.write_id);
    if (dedup != head_assigned_.end()) {
      // Retransmitted write already sequenced: re-forward with the same seqs
      // so the chain stays idempotent.
      msg.seqs = dedup->second;
    } else {
      msg.seqs.resize(msg.ops.size());
      for (std::size_t i = 0; i < msg.ops.size(); ++i) {
        const auto& op = msg.ops[i];
        auto it = sro_spaces_.find(op.space);
        if (it == sro_spaces_.end()) continue;
        SroSpaceState& sp = *it->second;
        const std::size_t slot = sp.slot(op.key);
        const SeqNum seq = sp.guard_seq(slot) + 1;
        sp.apply(op.key, op.value, sw_.control_plane().token());
        sp.set_guard_seq(slot, seq);
        sp.set_pending(slot);
        msg.seqs[i] = seq;
      }
      // Bounded dedup memory: entries are erased on ack; a blunt clear guards
      // against pathological loss keeping the map growing.
      if (head_assigned_.size() > 65536) head_assigned_.clear();
      head_assigned_.emplace(msg.write_id, msg.seqs);
    }
    const pkt::ChainConfig& chain = chain_for(msg.ops.front().space);
    if (chain.chain.back() == sw_.id()) {
      tail_commit(msg);
    } else {
      send_msg(chain_successor(chain), msg);
    }
  };
  // Table-backed state is updated through each hop's control plane (§6.1);
  // register-backed updates run entirely in the data plane.
  if (ops_table_backed(msg.ops)) {
    sw_.control_plane().submit(std::move(work));
  } else {
    work();
  }
}

void ShmRuntime::relay_process(pkt::WriteRequest msg) {
  auto work = [this, msg = std::move(msg)]() mutable {
    // Per-slot in-order check: a gap means an earlier write was lost; drop the
    // whole request and let the writer's retransmit repair the chain.
    for (std::size_t i = 0; i < msg.ops.size(); ++i) {
      auto it = sro_spaces_.find(msg.ops[i].space);
      if (it == sro_spaces_.end()) continue;
      const SroSpaceState& sp = *it->second;
      if (msg.seqs[i] > sp.guard_seq(sp.slot(msg.ops[i].key)) + 1) {
        ++stats_.chain_gap_drops;
        return;
      }
    }
    for (std::size_t i = 0; i < msg.ops.size(); ++i) {
      auto it = sro_spaces_.find(msg.ops[i].space);
      if (it == sro_spaces_.end()) continue;
      SroSpaceState& sp = *it->second;
      const std::size_t slot = sp.slot(msg.ops[i].key);
      if (msg.seqs[i] == sp.guard_seq(slot) + 1) {
        sp.apply(msg.ops[i].key, msg.ops[i].value, sw_.control_plane().token());
        sp.set_guard_seq(slot, msg.seqs[i]);
        sp.set_pending(slot);
      }
      // seqs[i] <= guard: duplicate of an already-applied write; still forward
      // so downstream switches that missed it catch up.
    }
    const pkt::ChainConfig& chain = chain_for(msg.ops.front().space);
    if (chain.chain.back() == sw_.id()) {
      tail_commit(msg);
    } else {
      send_msg(chain_successor(chain), msg);
    }
  };
  if (ops_table_backed(msg.ops)) {
    sw_.control_plane().submit(std::move(work));
  } else {
    work();
  }
}

void ShmRuntime::tail_commit(const pkt::WriteRequest& msg) {
  // The tail's copy is authoritative; it never redirects, so its pending bits
  // can clear immediately.
  for (std::size_t i = 0; i < msg.ops.size(); ++i) {
    auto it = sro_spaces_.find(msg.ops[i].space);
    if (it == sro_spaces_.end()) continue;
    SroSpaceState& sp = *it->second;
    sp.clear_pending_up_to(sp.slot(msg.ops[i].key), msg.seqs[i]);
  }
  pkt::WriteAck ack{msg.epoch, msg.writer, msg.write_id, msg.ops, msg.seqs};
  send_msg(msg.writer, ack);
  const pkt::ChainConfig& chain = chain_for(msg.ops.empty() ? 0 : msg.ops.front().space);
  for (SwitchId member : chain.chain) {
    if (member == sw_.id() || member == msg.writer) continue;
    send_msg(member, ack);
  }
  // While a recovery stream is active, every commit is also fed to the
  // recovering switch, in order, behind the snapshot (§6.3).
  if (recovery_ && recovery_tap_ &&
      (!recovery_->space_filter ||
       (!msg.ops.empty() && msg.ops.front().space == *recovery_->space_filter))) {
    pkt::WriteRequest chunk;
    chunk.epoch = kRecoveryEpoch;
    chunk.writer = sw_.id();
    chunk.snapshot_replay = true;
    chunk.write_id = recovery_->next_stream_seq++;
    chunk.ops = msg.ops;
    chunk.seqs = msg.seqs;
    recovery_->queue.push_back(std::move(chunk));
    recovery_send_next();
  }
}

void ShmRuntime::on_write_ack(const pkt::WriteAck& msg) {
  if (msg.epoch == kRecoveryEpoch) {
    on_recovery_ack(msg.write_id);
    return;
  }
  // Writer side: release the buffered output packet (via the CP, which
  // injects it back into the data plane, §7).
  if (msg.writer == sw_.id()) {
    auto it = pending_writes_.find(msg.write_id);
    if (it != pending_writes_.end()) {
      it->second.retry_timer.cancel();
      ++stats_.writes_committed;
      stats_.write_latency.add(
          static_cast<std::uint64_t>(sw_.simulator().now() - it->second.submit_time));
      auto release = std::move(it->second.release);
      auto output = std::move(it->second.output);
      pending_writes_.erase(it);
      if (release) {
        sw_.control_plane().submit(
            [release = std::move(release), output = std::move(output)]() mutable {
              release(std::move(output));
            });
      }
    }
  }
  // Ack processing in the data plane (§3.3): clear pending bits.
  for (std::size_t i = 0; i < msg.ops.size() && i < msg.seqs.size(); ++i) {
    auto it = sro_spaces_.find(msg.ops[i].space);
    if (it == sro_spaces_.end()) continue;
    SroSpaceState& sp = *it->second;
    sp.clear_pending_up_to(sp.slot(msg.ops[i].key), msg.seqs[i]);
  }
  head_assigned_.erase(msg.write_id);
}

// ---------------------------------------------------------------------------
// SRO/ERO: reads (§6.1)
// ---------------------------------------------------------------------------

ReadStatus ShmRuntime::sro_read(pisa::PacketContext& ctx, std::uint32_t space, std::uint64_t key,
                                std::uint64_t& value) {
  const pkt::ChainConfig& chain = chain_for(space);
  auto it = sro_spaces_.find(space);
  if (it == sro_spaces_.end()) {
    // Not a replica of this space (§9 partitioning): serve from the tail.
    auto rit = remote_spaces_.find(space);
    if (rit == remote_spaces_.end() || chain.chain.empty()) return ReadStatus::kMiss;
    ++stats_.reads_redirected;
    send_msg(chain.chain.back(), pkt::ReadRedirect{sw_.id(), ctx.packet.bytes()});
    return ReadStatus::kRedirected;
  }
  const SroSpaceState& sp = *it->second;

  const bool tail_here = !chain.chain.empty() && chain.chain.back() == sw_.id();
  bool local_ok = sp.config().cls == ConsistencyClass::kERO  // ERO: always local
                  || authoritative_                          // already at the tail
                  || tail_here;                              // tail state is committed
  if (!local_ok && chain_contains(chain, sw_.id())) {
    local_ok = !sp.pending(sp.slot(key));  // CRAQ-style local read (§6.1)
  }
  if (!local_ok) {
    if (chain.chain.empty()) {
      local_ok = true;  // unreplicated deployment: nothing to redirect to
    } else {
      ++stats_.reads_redirected;
      send_msg(chain.chain.back(), pkt::ReadRedirect{sw_.id(), ctx.packet.bytes()});
      return ReadStatus::kRedirected;
    }
  }
  ++stats_.reads_local;
  auto v = sp.read(key);
  if (!v) return ReadStatus::kMiss;
  value = *v;
  return ReadStatus::kOk;
}

void ShmRuntime::on_read_redirect(const pkt::ReadRedirect& msg) {
  ++stats_.redirects_processed;
  if (!nf_reentry_) return;
  pisa::PacketContext ctx{sw_, pkt::Packet(msg.original_packet), nullptr,
                          net::kInvalidPort, /*from_edge=*/true, /*recirc_count=*/1};
  ctx.parsed = ctx.packet.parsed();
  authoritative_ = true;
  nf_reentry_(ctx);
  authoritative_ = false;
}

// ---------------------------------------------------------------------------
// EWO (§6.2)
// ---------------------------------------------------------------------------

std::uint64_t ShmRuntime::ewo_read(std::uint32_t space, std::uint64_t key) {
  auto it = ewo_spaces_.find(space);
  if (it == ewo_spaces_.end()) return 0;
  ++stats_.ewo_reads;
  return it->second->read(key);
}

void ShmRuntime::ewo_write(std::uint32_t space, std::uint64_t key, std::uint64_t value) {
  auto it = ewo_spaces_.find(space);
  if (it == ewo_spaces_.end()) return;
  ++stats_.ewo_local_writes;
  // Lamport-style hybrid timestamp (§6.2 allows either a Lamport clock or a
  // synchronized real-time clock): strictly monotone per switch, so two
  // same-instant local writes still produce ordered versions and the later
  // value is never rejected by remote merges.
  TimeNs ts = sw_.simulator().now() + config_.clock_offset;
  if (ts <= last_lww_timestamp_) ts = last_lww_timestamp_ + 1;
  last_lww_timestamp_ = ts;
  it->second->write_local(key, value, Version::pack(ts, sw_.id()));
  if (it->second->config().mirror_writes) mirror_enqueue(*it->second, key);
}

std::uint64_t ShmRuntime::ewo_add(std::uint32_t space, std::uint64_t key, std::int64_t delta) {
  auto it = ewo_spaces_.find(space);
  if (it == ewo_spaces_.end()) return 0;
  ++stats_.ewo_local_writes;
  const std::uint64_t result = it->second->add_local(key, delta);
  if (it->second->config().mirror_writes) mirror_enqueue(*it->second, key);
  return result;
}

std::uint64_t ShmRuntime::ewo_set_add(std::uint32_t space, std::uint64_t key,
                                      std::uint64_t bits) {
  auto it = ewo_spaces_.find(space);
  if (it == ewo_spaces_.end()) return 0;
  ++stats_.ewo_local_writes;
  const std::uint64_t result = it->second->set_add_local(key, bits);
  if (it->second->config().mirror_writes) mirror_enqueue(*it->second, key);
  return result;
}

void ShmRuntime::mirror_enqueue(const EwoSpaceState& st, std::uint64_t key) {
  mirror_buffer_.emplace_back(&st, key);
  if (mirror_buffer_.size() >= st.config().mirror_batch) flush_mirror_buffer();
}

void ShmRuntime::flush_mirror_buffer() {
  if (mirror_buffer_.empty()) return;
  pkt::EwoUpdate update;
  update.origin = sw_.id();
  update.periodic = false;
  for (const auto& [st, key] : mirror_buffer_) {
    st->collect_own_entries(key, update.entries);
  }
  mirror_buffer_.clear();
  const auto targets = group_.members.empty() ? deployment_ : group_.members;
  std::uint64_t copies = 0;
  for (SwitchId dst : targets) {
    if (dst == sw_.id()) continue;
    send_msg(dst, update);
    ++copies;
  }
  stats_.ewo_updates_sent += copies;
}

void ShmRuntime::periodic_sync() {
  if (ewo_spaces_.empty()) return;
  ++stats_.sync_rounds;
  std::vector<pkt::EwoEntry> all;
  for (const auto& [id, sp] : ewo_spaces_) sp->collect_sync_entries(all);
  if (all.empty()) return;

  std::vector<SwitchId> targets;
  for (SwitchId m : (group_.members.empty() ? deployment_ : group_.members)) {
    if (m != sw_.id()) targets.push_back(m);
  }
  if (targets.empty()) return;

  for (std::size_t off = 0; off < all.size(); off += config_.sync_chunk_entries) {
    pkt::EwoUpdate update;
    update.origin = sw_.id();
    update.periodic = true;
    const std::size_t end = std::min(off + config_.sync_chunk_entries, all.size());
    update.entries.assign(all.begin() + static_cast<std::ptrdiff_t>(off),
                          all.begin() + static_cast<std::ptrdiff_t>(end));
    if (config_.sync_fanout == SyncFanout::kRandomOne) {
      const SwitchId dst = targets[rng_.next_below(targets.size())];
      send_msg(dst, update);
      stats_.sync_entries_sent += update.entries.size();
      ++stats_.ewo_updates_sent;
    } else {
      for (SwitchId dst : targets) {
        send_msg(dst, update);
        stats_.sync_entries_sent += update.entries.size();
        ++stats_.ewo_updates_sent;
      }
    }
  }
}

void ShmRuntime::on_ewo_update(const pkt::EwoUpdate& msg) {
  ++stats_.ewo_updates_received;
  for (const auto& entry : msg.entries) {
    auto it = ewo_spaces_.find(entry.space);
    if (it == ewo_spaces_.end()) continue;
    if (it->second->merge(entry)) ++stats_.ewo_entries_merged;
  }
}

// ---------------------------------------------------------------------------
// Recovery (§6.3)
// ---------------------------------------------------------------------------

void ShmRuntime::start_recovery_stream(SwitchId target, std::function<void()> done,
                                       std::optional<std::uint32_t> space_filter) {
  recovery_.emplace();
  recovery_->target = target;
  recovery_->space_filter = space_filter;
  recovery_->done = std::move(done);
  recovery_tap_ = true;
  // Snapshot is taken by the control plane (§6.3) and replayed through the
  // normal data-plane protocol as seq-guarded writes.
  sw_.control_plane().submit([this]() {
    if (!recovery_) return;
    std::vector<pkt::WriteOp> ops;
    std::vector<SeqNum> seqs;
    auto flush = [&]() {
      if (ops.empty()) return;
      pkt::WriteRequest chunk;
      chunk.epoch = kRecoveryEpoch;
      chunk.writer = sw_.id();
      chunk.snapshot_replay = true;
      chunk.write_id = recovery_->next_stream_seq++;
      chunk.ops = std::move(ops);
      chunk.seqs = std::move(seqs);
      recovery_->queue.push_back(std::move(chunk));
      ops.clear();
      seqs.clear();
    };
    for (const auto& [id, sp] : sro_spaces_) {
      if (recovery_->space_filter && id != *recovery_->space_filter) continue;
      for (const auto& entry : sp->snapshot()) {
        ops.push_back(entry.op);
        seqs.push_back(entry.seq);
        if (ops.size() >= kRecoveryChunkOps) flush();
      }
    }
    flush();
    if (recovery_->queue.empty()) {
      // Nothing to transfer; recovery completes immediately.
      auto cb = std::move(recovery_->done);
      recovery_->done = nullptr;
      if (cb) cb();
      return;
    }
    recovery_send_next();
  });
}

void ShmRuntime::recovery_send_next() {
  if (!recovery_ || recovery_->awaiting_ack != 0) return;
  if (recovery_->queue.empty()) return;
  const pkt::WriteRequest& chunk = recovery_->queue.front();
  recovery_->awaiting_ack = chunk.write_id;
  recovery_->retries = 0;
  ++stats_.recovery_chunks_sent;
  send_msg(recovery_->target, chunk);
  arm_recovery_timer(chunk.write_id);
}

void ShmRuntime::arm_recovery_timer(std::uint64_t expect) {
  recovery_->timer =
      sw_.control_plane().schedule_after(config_.write_retry_timeout, [this, expect]() {
        if (!recovery_ || recovery_->awaiting_ack != expect) return;
        if (++recovery_->retries > config_.max_write_retries) {
          // Target unreachable: abandon the stream; the controller restarts
          // recovery if the target is still alive.
          recovery_.reset();
          recovery_tap_ = false;
          return;
        }
        ++stats_.recovery_chunks_sent;
        send_msg(recovery_->target, recovery_->queue.front());
        arm_recovery_timer(expect);
      });
}

void ShmRuntime::on_recovery_ack(std::uint64_t stream_seq) {
  if (!recovery_ || recovery_->awaiting_ack != stream_seq) return;
  recovery_->timer.cancel();
  recovery_->awaiting_ack = 0;
  recovery_->queue.pop_front();
  if (recovery_->queue.empty()) {
    // Snapshot (plus tapped live writes so far) fully acknowledged.
    if (recovery_->done) {
      auto cb = std::move(recovery_->done);
      recovery_->done = nullptr;
      cb();
    }
    return;  // stream stays alive for tapped commits until the epoch switch
  }
  recovery_send_next();
}

void ShmRuntime::on_recovery_chunk(const pkt::WriteRequest& msg) {
  if (msg.write_id == last_recovery_applied_ + 1) {
    for (std::size_t i = 0; i < msg.ops.size(); ++i) {
      auto it = sro_spaces_.find(msg.ops[i].space);
      if (it == sro_spaces_.end()) continue;
      SroSpaceState& sp = *it->second;
      const std::size_t slot = sp.slot(msg.ops[i].key);
      // Stream order replays the donor's apply order, so application is
      // unconditional; guards advance monotonically.
      sp.apply(msg.ops[i].key, msg.ops[i].value, sw_.control_plane().token());
      if (msg.seqs[i] > sp.guard_seq(slot)) sp.set_guard_seq(slot, msg.seqs[i]);
    }
    last_recovery_applied_ = msg.write_id;
    ++stats_.recovery_chunks_applied;
  } else if (msg.write_id > last_recovery_applied_ + 1) {
    return;  // out-of-order future chunk: drop; stop-and-wait resends in order
  }
  // Duplicate or just-applied chunk: (re-)ack.
  send_msg(msg.writer, pkt::WriteAck{kRecoveryEpoch, msg.writer, msg.write_id, {}, {}});
}

void ShmRuntime::reset_state() {
  for (auto& [id, sp] : sro_spaces_) sp->reset(sw_.control_plane().token());
  for (auto& [id, sp] : ewo_spaces_) sp->reset();
  pending_writes_.clear();
  head_assigned_.clear();
  mirror_buffer_.clear();
  last_recovery_applied_ = 0;
  recovery_.reset();
  recovery_tap_ = false;
  // A replacement switch also forgets its configuration; the controller's
  // next push (any epoch) is accepted.
  chain_ = {};
  group_ = {};
}

// ---------------------------------------------------------------------------
// ShmProgram
// ---------------------------------------------------------------------------

ShmProgram::ShmProgram(ShmRuntime& runtime, std::unique_ptr<NfApp> nf)
    : runtime_(runtime), nf_(std::move(nf)) {
  runtime_.set_nf_reentry([this](pisa::PacketContext& ctx) {
    if (nf_) nf_->process(ctx, runtime_);
  });
}

void ShmProgram::process(pisa::PacketContext& ctx) {
  // Protocol packets in transit (multi-hop topologies: the chain successor or
  // the controller may not be a direct neighbour) are forwarded toward their
  // destination switch, not consumed here.
  if (ctx.parsed && ctx.parsed->ipv4 && ctx.parsed->udp &&
      ctx.parsed->udp->dst_port == pkt::kSwishPort &&
      (ctx.parsed->ipv4->dst.value() >> 24) == 10) {
    const NodeId dst = ctx.parsed->ipv4->dst.value() & 0x00ffffff;
    if (dst != runtime_.self()) {
      const auto hash = pkt::FlowKey::from(*ctx.parsed).hash();
      ctx.sw.send_to_node(dst, std::move(ctx.packet), hash, ctx.recirc_count);
      return;
    }
  }
  if (runtime_.handle_protocol_packet(ctx)) return;
  if (nf_) nf_->process(ctx, runtime_);
}

}  // namespace swish::shm
