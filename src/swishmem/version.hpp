// Last-writer-wins version numbers (§6.2): a timestamp with the switch id as
// tiebreaker, packed into 64 bits so a version fits one register.
#pragma once

#include <cstdint>

#include "common/types.hpp"

namespace swish::shm {

/// version = (timestamp_ns & 2^56-1) << 8 | (switch_id & 0xff).
/// 56 bits of nanoseconds cover ~2.3 simulated years; 8 bits of switch id
/// cover the replica-group sizes that fit switch memory anyway.
class Version {
 public:
  static constexpr RawVersion pack(TimeNs timestamp, SwitchId sw) noexcept {
    return (static_cast<RawVersion>(timestamp) & ((1ULL << 56) - 1)) << 8 |
           (static_cast<RawVersion>(sw) & 0xff);
  }

  static constexpr TimeNs timestamp(RawVersion v) noexcept {
    return static_cast<TimeNs>(v >> 8);
  }

  static constexpr SwitchId switch_id(RawVersion v) noexcept {
    return static_cast<SwitchId>(v & 0xff);
  }
};

}  // namespace swish::shm
