// Fabric: the top-level SwiShmem deployment — simulator, network topology,
// switches, per-switch runtimes, and the central controller, assembled from
// one config. This is the library's main entry point:
//
//   shm::FabricConfig cfg;
//   cfg.num_switches = 4;
//   shm::Fabric fabric(cfg);
//   fabric.add_space({.id = 0, .name = "conn", .cls = shm::ConsistencyClass::kSRO,
//                     .size = 4096, .table_backed = true});
//   fabric.install([] { return std::make_unique<MyNf>(); });
//   fabric.start();
//   fabric.sw(0).inject(packet);
//   fabric.run_for(1 * swish::kSec);
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "net/topology.hpp"
#include "swishmem/controller.hpp"
#include "swishmem/runtime.hpp"

namespace swish::shm {

struct FabricConfig {
  std::size_t num_switches = 4;

  enum class Topology { kFullMesh, kChain, kLeafSpine } topology = Topology::kFullMesh;
  std::size_t spine_count = 2;  ///< leaf-spine only (switches become leaves)

  net::LinkParams link;                 ///< inter-switch links
  pisa::Switch::Config switch_config;   ///< per-switch data/control plane
  RuntimeConfig runtime;                ///< SwiShmem protocol tuning
  Controller::Config controller;
  std::uint64_t seed = 1;

  /// Per-switch clock skew bound: switch i gets offset in [0, bound] (§6.2
  /// cites data-plane time sync within tens of ns).
  TimeNs clock_skew_bound = 50;
};

class Fabric {
 public:
  explicit Fabric(FabricConfig config);
  Fabric(const Fabric&) = delete;
  Fabric& operator=(const Fabric&) = delete;

  /// Declares a replicated register space. By default every switch is a
  /// replica; passing a `replicas` subset creates a partitioned space (§9)
  /// managed by the controller's directory — other switches access it
  /// remotely via its chain. Call before install().
  void add_space(const SpaceConfig& space, std::vector<SwitchId> replicas = {});

  /// Instantiates the NF on every switch (one NfApp instance per switch) and
  /// wires runtimes + programs. Pass nullptr-producing factory for a
  /// protocol-only deployment.
  void install(const std::function<std::unique_ptr<NfApp>()>& nf_factory);

  /// Bootstraps configuration and starts heartbeats/sync/failure detection.
  void start();

  /// Runs the simulation clock forward.
  void run_for(TimeNs duration) { sim_.run_until(sim_.now() + duration); }

  // -- Accessors ----------------------------------------------------------------

  [[nodiscard]] sim::Simulator& simulator() noexcept { return sim_; }
  [[nodiscard]] net::Network& network() noexcept { return net_; }
  [[nodiscard]] Controller& controller() noexcept { return *controller_; }
  [[nodiscard]] std::size_t size() const noexcept { return switches_.size(); }
  [[nodiscard]] pisa::Switch& sw(std::size_t i) { return *switches_.at(i); }
  [[nodiscard]] ShmRuntime& runtime(std::size_t i) { return *runtimes_.at(i); }
  [[nodiscard]] const std::vector<SwitchId>& switch_ids() const noexcept { return ids_; }
  [[nodiscard]] const FabricConfig& config() const noexcept { return config_; }

  /// Installs the same delivery sink on every switch.
  void set_delivery_sink(std::function<void(const pkt::Packet&)> sink);

  // -- Failure experiments (§6.3) --------------------------------------------------

  /// Fail-stop: the switch black-holes all traffic from now on.
  void kill_switch(std::size_t i) { switches_.at(i)->fail(); }

  /// Boots a replacement for a previously-killed switch: clears its state and
  /// asks the controller to re-admit it (EWO resync + SRO snapshot stream).
  void revive_switch(std::size_t i);

 private:
  FabricConfig config_;
  sim::Simulator sim_;
  net::Network net_;
  std::vector<std::unique_ptr<pisa::Switch>> switches_;
  std::vector<std::unique_ptr<ShmRuntime>> runtimes_;
  std::unique_ptr<Controller> controller_;
  std::vector<SwitchId> ids_;
  std::vector<std::unique_ptr<pisa::Switch>> spines_;  // leaf-spine transit nodes
  std::vector<std::pair<SpaceConfig, std::vector<SwitchId>>> spaces_;
  bool installed_ = false;
};

}  // namespace swish::shm
