// Fabric: the top-level SwiShmem deployment — simulator, network topology,
// switches, per-switch runtimes, and the central controller, assembled from
// one config. This is the library's main entry point:
//
//   shm::FabricConfig cfg;
//   cfg.num_switches = 4;
//   shm::Fabric fabric(cfg);
//   fabric.add_space({.id = 0, .name = "conn", .cls = shm::ConsistencyClass::kSRO,
//                     .size = 4096, .table_backed = true});
//   fabric.install([] { return std::make_unique<MyNf>(); });
//   fabric.start();
//   fabric.sw(0).inject(packet);
//   fabric.run_for(1 * swish::kSec);
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "net/topology.hpp"
#include "sim/shard.hpp"
#include "swishmem/controller.hpp"
#include "swishmem/runtime.hpp"

namespace swish::shm {

struct FabricConfig {
  std::size_t num_switches = 4;

  /// Logical processes for the parallel simulation core. The fabric's nodes
  /// are partitioned across this many shards (leaf switches in contiguous id
  /// blocks, spines round-robin, controller on shard 0), each with its own
  /// event queue and virtual clock, synchronized conservatively with the
  /// minimum inter-shard propagation delay as lookahead. 1 (the default) is
  /// the legacy single-threaded core — byte-identical output. Must be in
  /// [1, num_switches].
  std::size_t shards = 1;

  enum class Topology { kFullMesh, kChain, kLeafSpine } topology = Topology::kFullMesh;
  std::size_t spine_count = 2;  ///< leaf-spine only (switches become leaves)

  net::LinkParams link;                 ///< inter-switch links
  pisa::Switch::Config switch_config;   ///< per-switch data/control plane
  RuntimeConfig runtime;                ///< SwiShmem protocol tuning
  Controller::Config controller;
  std::uint64_t seed = 1;

  /// Per-switch clock skew bound: switch i gets offset in [0, bound] (§6.2
  /// cites data-plane time sync within tens of ns).
  TimeNs clock_skew_bound = 50;

  /// INT-MD sampling (0 = off): tag 1-in-N edge-injected packets and 1-in-N
  /// protocol sends with a per-hop telemetry trailer. Copied into both the
  /// switch config (edge sampling, hop append, sink extraction) and the
  /// runtime config (protocol-send sampling) at construction.
  std::uint64_t int_sample_every = 0;
  unsigned int_hop_cap = 8;  ///< max on-wire hop records per packet (1..255)
};

class Fabric {
 public:
  explicit Fabric(FabricConfig config);
  Fabric(const Fabric&) = delete;
  Fabric& operator=(const Fabric&) = delete;

  /// Declares a replicated register space. By default every switch is a
  /// replica; passing a `replicas` subset creates a partitioned space (§9)
  /// managed by the controller's directory — other switches access it
  /// remotely via its chain. Call before install().
  void add_space(const SpaceConfig& space, std::vector<SwitchId> replicas = {});

  /// Instantiates the NF on every switch (one NfApp instance per switch) and
  /// wires runtimes + programs. Pass nullptr-producing factory for a
  /// protocol-only deployment.
  void install(const std::function<std::unique_ptr<NfApp>()>& nf_factory);

  /// Bootstraps configuration and starts heartbeats/sync/failure detection.
  void start();

  /// Runs the simulation clock forward (every shard, conservatively synced;
  /// one shard delegates straight to Simulator::run_until).
  void run_for(TimeNs duration) { shards_.run_until(shards_.now() + duration); }

  // -- Accessors ----------------------------------------------------------------

  /// Shard 0's simulator — the reference clock, and the exact legacy
  /// simulator when shards == 1.
  [[nodiscard]] sim::Simulator& simulator() noexcept { return shards_.sim(0); }
  [[nodiscard]] sim::ShardSet& shard_set() noexcept { return shards_; }
  [[nodiscard]] const sim::ShardSet& shard_set() const noexcept { return shards_; }
  /// The simulator executing switch i's events (== simulator() at one shard).
  [[nodiscard]] sim::Simulator& simulator_for(std::size_t i) {
    return shards_.sim_for(ids_.at(i));
  }
  [[nodiscard]] std::size_t shard_of_switch(std::size_t i) const {
    return shards_.shard_of(ids_.at(i));
  }
  [[nodiscard]] net::Network& network() noexcept { return net_; }
  [[nodiscard]] Controller& controller() noexcept { return *controller_; }
  [[nodiscard]] std::size_t size() const noexcept { return switches_.size(); }
  [[nodiscard]] pisa::Switch& sw(std::size_t i) { return *switches_.at(i); }
  [[nodiscard]] ShmRuntime& runtime(std::size_t i) { return *runtimes_.at(i); }
  [[nodiscard]] const std::vector<SwitchId>& switch_ids() const noexcept { return ids_; }
  [[nodiscard]] const FabricConfig& config() const noexcept { return config_; }

  /// Installs the same delivery sink on every switch.
  void set_delivery_sink(std::function<void(const pkt::Packet&)> sink);

  // -- Sharded experiment plumbing -----------------------------------------------
  // Harness entry points that work at any shard count; at one shard each is
  // exactly the legacy direct call.

  /// Edge ingress from the experiment harness. Shard-0 switches (and one-shard
  /// fabrics) take the direct sw(i).inject path; cross-shard switches receive
  /// the packet one lookahead ahead of shard 0's clock via the inbox lanes.
  /// Callable from shard 0's events or between runs.
  void inject(std::size_t i, pkt::Packet packet);

  /// Schedules a fail-stop kill at absolute virtual time `at`, on the
  /// switch's own shard (where its traffic executes).
  void schedule_kill(std::size_t i, TimeNs at);

  /// Schedules revival of a previously-killed switch at `at`: local recover +
  /// state reset on the switch's shard, controller re-admission on shard 0 —
  /// the sharded split of revive_switch(). Requires install().
  void schedule_revive(std::size_t i, TimeNs at);

  // -- Fabric-wide telemetry ------------------------------------------------------

  /// Metrics across all shards, merged deterministically (exactly the legacy
  /// snapshot at one shard).
  [[nodiscard]] telemetry::MetricsSnapshot metrics_snapshot() const {
    return shards_.merged_metrics_snapshot();
  }

  /// All recorded causal spans, concatenated in shard order.
  [[nodiscard]] std::vector<telemetry::Span> all_spans() const { return shards_.all_spans(); }

  /// All drop records across shards in canonical (time, node, seq) order —
  /// identical at every shard count (per-node rings, per-node seq).
  [[nodiscard]] std::vector<telemetry::DropRecord> all_drop_records() const;

  /// Per-(node, reason) drop totals summed across shards (never evicted,
  /// unlike the bounded record rings).
  [[nodiscard]] std::map<NodeId, std::array<std::uint64_t, telemetry::kNumDropReasons>>
  all_drop_counts() const;

  /// All INT sink reports across shards in canonical (time, sink, seq) order.
  [[nodiscard]] std::vector<telemetry::IntSinkReport> all_int_reports() const;

  /// Enables span sampling on every shard's recorder.
  void enable_spans(std::uint64_t sample_every,
                    std::size_t max_spans = telemetry::SpanRecorder::kDefaultMaxSpans);

  /// Enables the consistency-lag observatory: the simulator's own at one
  /// shard; per-shard logs replayed into a fabric-wide master otherwise.
  void enable_observatory();

  /// Where lag measurements accumulate (pair with enable_observatory()).
  [[nodiscard]] telemetry::ConsistencyObservatory& observatory() noexcept {
    return shards_.observatory();
  }

  // -- Failure experiments (§6.3) --------------------------------------------------

  /// Fail-stop: the switch black-holes all traffic from now on.
  void kill_switch(std::size_t i) { switches_.at(i)->fail(); }

  /// Boots a replacement for a previously-killed switch: clears its state and
  /// asks the controller to re-admit it (EWO resync + SRO snapshot stream).
  void revive_switch(std::size_t i);

 private:
  FabricConfig config_;
  sim::ShardSet shards_;
  net::Network net_;
  std::vector<std::unique_ptr<pisa::Switch>> switches_;
  std::vector<std::unique_ptr<ShmRuntime>> runtimes_;
  std::unique_ptr<Controller> controller_;
  std::vector<SwitchId> ids_;
  std::vector<std::unique_ptr<pisa::Switch>> spines_;  // leaf-spine transit nodes
  std::vector<std::pair<SpaceConfig, std::vector<SwitchId>>> spaces_;
  bool installed_ = false;
};

}  // namespace swish::shm
