// The per-switch SwiShmem runtime: the protocol engine of §6 plus the
// NF-facing register API of §5.
//
// One ShmRuntime is attached to each switch. It owns the replicated register
// spaces (storage lives in the switch's PISA objects), implements the SRO/ERO
// chain protocol and the EWO asynchronous replication protocol, and exposes
// reads/writes to NF programs. Protocol packets arrive through the installed
// ShmProgram, which dispatches UDP port kSwishPort traffic here before the NF
// logic sees anything.
#pragma once

#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/stats.hpp"
#include "packet/flow.hpp"
#include "packet/swish_wire.hpp"
#include "pisa/switch.hpp"
#include "swishmem/config.hpp"
#include "swishmem/spaces.hpp"

namespace swish::shm {

/// Outcome of an SRO/ERO read during packet processing.
enum class ReadStatus {
  kOk,          ///< value is valid (read served locally or authoritatively)
  kMiss,        ///< table-backed space has no entry for the key
  kRedirected,  ///< original packet was forwarded to the chain tail; the NF
                ///< must stop processing this packet and emit no output
};

class ShmRuntime {
 public:
  struct Stats {
    // SRO/ERO writer side.
    std::uint64_t writes_submitted = 0;
    std::uint64_t writes_committed = 0;
    std::uint64_t write_retries = 0;
    std::uint64_t writes_failed = 0;       ///< gave up after max retries
    std::uint64_t writes_rejected = 0;     ///< CP buffer full
    // SRO/ERO chain side.
    std::uint64_t chain_requests_seen = 0;
    std::uint64_t chain_gap_drops = 0;     ///< out-of-order writes awaiting retry
    std::uint64_t chain_stale_epoch = 0;
    // Reads.
    std::uint64_t reads_local = 0;
    std::uint64_t reads_redirected = 0;
    std::uint64_t redirects_processed = 0;  ///< redirected reads served (at tail)
    // EWO.
    std::uint64_t ewo_reads = 0;
    std::uint64_t ewo_local_writes = 0;
    std::uint64_t ewo_updates_sent = 0;
    std::uint64_t ewo_updates_received = 0;
    std::uint64_t ewo_entries_merged = 0;   ///< entries that changed local state
    std::uint64_t sync_rounds = 0;
    std::uint64_t sync_entries_sent = 0;
    // Recovery.
    std::uint64_t recovery_chunks_sent = 0;
    std::uint64_t recovery_chunks_applied = 0;
    // Protocol bandwidth (payload + headers, per message class).
    std::uint64_t bytes_write_path = 0;  ///< WriteRequest + WriteAck
    std::uint64_t bytes_ewo = 0;         ///< EwoUpdate (mirror + sync)
    std::uint64_t bytes_redirect = 0;    ///< ReadRedirect
    // Writer-observed commit latency (submit -> ack), ns.
    Histogram write_latency;
  };

  ShmRuntime(pisa::Switch& sw, RuntimeConfig config, NodeId controller);

  ShmRuntime(const ShmRuntime&) = delete;
  ShmRuntime& operator=(const ShmRuntime&) = delete;

  // -- Setup ------------------------------------------------------------------

  /// Declares a replicated space hosted on this switch; `replicas` is the
  /// replica set (the full deployment by default; a subset for partitioned
  /// spaces, §9). Call before traffic starts, or at migration time when this
  /// switch joins a space's replica group.
  void add_space(const SpaceConfig& config, const std::vector<SwitchId>& replicas);

  /// Declares a space this switch does NOT replicate (§9 partitioning): all
  /// strong reads redirect to the space's chain tail and writes are sent to
  /// its chain head. EWO spaces cannot be remote.
  void add_remote_space(const SpaceConfig& config);

  /// True when this switch hosts storage for the space.
  [[nodiscard]] bool hosts_space(std::uint32_t space) const noexcept;

  /// Starts heartbeats, the EWO periodic synchronizer, and the mirror-batch
  /// flusher. Call after all spaces exist.
  void start();

  /// Installed by ShmProgram: how to re-run the NF logic on a redirected
  /// packet at the tail.
  void set_nf_reentry(std::function<void(pisa::PacketContext&)> reentry) {
    nf_reentry_ = std::move(reentry);
  }

  // -- Configuration from the controller (management network) ------------------

  void set_chain(const pkt::ChainConfig& config);
  void set_group(const pkt::GroupConfig& config);
  [[nodiscard]] const pkt::ChainConfig& chain() const noexcept { return chain_; }
  [[nodiscard]] const pkt::GroupConfig& group() const noexcept { return group_; }

  /// Installs the chain used by one partitioned space (overrides the global
  /// chain for that space's operations).
  void set_space_chain(std::uint32_t space, const pkt::ChainConfig& config);

  /// Chain governing a space: its own chain when partitioned, else the
  /// deployment-wide chain.
  [[nodiscard]] const pkt::ChainConfig& chain_for(std::uint32_t space) const noexcept;

  // -- NF-facing register API (§5) ---------------------------------------------

  /// SRO/ERO read during packet processing. On kRedirected the runtime has
  /// already encapsulated ctx's packet to the tail; the caller must return
  /// without emitting output.
  ReadStatus sro_read(pisa::PacketContext& ctx, std::uint32_t space, std::uint64_t key,
                      std::uint64_t& value);

  /// SRO/ERO write: hands the write set and the buffered output packet to the
  /// control plane (§6.1). `release` runs on this switch when the tail acks
  /// (typically injecting P' back into the data plane). The output packet may
  /// be empty when the mutating packet produces no output.
  void sro_write(std::vector<pkt::WriteOp> ops, pkt::Packet output,
                 std::function<void(pkt::Packet&&)> release);

  /// EWO local read (always local, §6.2).
  std::uint64_t ewo_read(std::uint32_t space, std::uint64_t key);

  /// EWO LWW write: applies locally, emits the output immediately (caller's
  /// job), and asynchronously mirrors the update to the replica group.
  void ewo_write(std::uint32_t space, std::uint64_t key, std::uint64_t value);

  /// EWO counter update (G-counter / PN-counter); returns the new aggregate.
  std::uint64_t ewo_add(std::uint32_t space, std::uint64_t key, std::int64_t delta);

  /// EWO G-set insertion: ORs `bits` into the key's membership bitmap and
  /// replicates the new bitmap; returns it.
  std::uint64_t ewo_set_add(std::uint32_t space, std::uint64_t key, std::uint64_t bits);

  // -- Protocol ingress ----------------------------------------------------------

  /// Consumes SwiShmem protocol packets (UDP dst port kSwishPort). Returns
  /// true when the packet was protocol traffic.
  bool handle_protocol_packet(pisa::PacketContext& ctx);

  // -- Recovery (§6.3) -------------------------------------------------------------

  /// Donor side: streams a snapshot plus all subsequently-applied writes to
  /// `target` (stop-and-wait, retransmitted), invoking `done` when the target
  /// has acknowledged everything. Called on the current tail by the
  /// controller. `space_filter` restricts the stream to one space (used by
  /// migration); by default every hosted SRO/ERO space is streamed.
  void start_recovery_stream(SwitchId target, std::function<void()> done,
                             std::optional<std::uint32_t> space_filter = std::nullopt);

  /// Wipes all replicated state (a replacement switch boots empty).
  void reset_state();

  // -- Introspection ------------------------------------------------------------

  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }
  [[nodiscard]] Stats& stats() noexcept { return stats_; }
  [[nodiscard]] pisa::Switch& owner() noexcept { return sw_; }
  [[nodiscard]] SwitchId self() const noexcept { return sw_.id(); }
  [[nodiscard]] const RuntimeConfig& config() const noexcept { return config_; }

  [[nodiscard]] bool in_chain() const noexcept;
  [[nodiscard]] bool is_head() const noexcept;
  [[nodiscard]] bool is_tail() const noexcept;

  /// Number of output packets currently buffered in CP DRAM awaiting acks.
  [[nodiscard]] std::size_t cp_buffered_packets() const noexcept {
    return pending_writes_.size();
  }

  [[nodiscard]] const SroSpaceState* sro_space(std::uint32_t id) const;
  [[nodiscard]] const EwoSpaceState* ewo_space(std::uint32_t id) const;

 private:
  struct PendingWrite {
    std::vector<pkt::WriteOp> ops;
    pkt::Packet output;
    std::function<void(pkt::Packet&&)> release;
    unsigned retries = 0;
    TimeNs submit_time = 0;
    sim::TimerHandle retry_timer;
  };

  // Message handlers.
  void on_write_request(pkt::WriteRequest msg);
  void on_write_ack(const pkt::WriteAck& msg);
  void on_ewo_update(const pkt::EwoUpdate& msg);
  void on_read_redirect(const pkt::ReadRedirect& msg);

  // Chain roles.
  void head_process(pkt::WriteRequest msg);
  void relay_process(pkt::WriteRequest msg);
  void tail_commit(const pkt::WriteRequest& msg);
  void apply_ops(const std::vector<pkt::WriteOp>& ops, const std::vector<SeqNum>& seqs,
                 bool set_pending);
  [[nodiscard]] bool ops_table_backed(const std::vector<pkt::WriteOp>& ops) const;

  // Writer side.
  void send_write_request(std::uint64_t write_id);
  void arm_retry(std::uint64_t write_id);

  // Recovery.
  struct RecoveryStream {
    SwitchId target = kInvalidNode;
    std::optional<std::uint32_t> space_filter;
    std::deque<pkt::WriteRequest> queue;  ///< chunks awaiting transmission
    std::uint64_t next_stream_seq = 1;
    std::uint64_t awaiting_ack = 0;  ///< 0 = idle
    unsigned retries = 0;
    std::function<void()> done;
    sim::TimerHandle timer;
  };
  void recovery_send_next();
  void arm_recovery_timer(std::uint64_t expect);
  void on_recovery_ack(std::uint64_t stream_seq);
  void on_recovery_chunk(const pkt::WriteRequest& msg);

  // EWO mirroring / sync.
  void mirror_enqueue(const EwoSpaceState& st, std::uint64_t key);
  void flush_mirror_buffer();
  void periodic_sync();

  // Transport.
  void send_msg(SwitchId dst, const pkt::SwishMessage& msg);
  void multicast_msg(const std::vector<SwitchId>& dsts, const pkt::SwishMessage& msg);
  [[nodiscard]] pkt::Packet wrap(SwitchId dst, const pkt::SwishMessage& msg) const;

  [[nodiscard]] SwitchId chain_successor(const pkt::ChainConfig& chain) const noexcept;
  [[nodiscard]] static bool chain_contains(const pkt::ChainConfig& chain, SwitchId sw) noexcept;

  pisa::Switch& sw_;
  RuntimeConfig config_;
  NodeId controller_;
  Stats stats_;

  std::unordered_map<std::uint32_t, std::unique_ptr<SroSpaceState>> sro_spaces_;
  std::unordered_map<std::uint32_t, std::unique_ptr<EwoSpaceState>> ewo_spaces_;
  std::vector<SpaceConfig> space_configs_;
  std::vector<SwitchId> deployment_;  ///< replicas passed to add_space

  pkt::ChainConfig chain_;
  pkt::GroupConfig group_;
  std::unordered_map<std::uint32_t, pkt::ChainConfig> space_chains_;  ///< §9 partitioning
  std::unordered_map<std::uint32_t, SpaceConfig> remote_spaces_;

  // Writer state (CP DRAM).
  std::unordered_map<std::uint64_t, PendingWrite> pending_writes_;
  std::uint64_t next_write_id_ = 0;

  // Head dedup: write_id -> assigned seqs for in-flight writes.
  std::unordered_map<std::uint64_t, std::vector<SeqNum>> head_assigned_;

  // Tail-side recovery stream (donor) and target-side cursor.
  std::optional<RecoveryStream> recovery_;
  bool recovery_tap_ = false;  ///< tail forwards applied writes into the stream
  std::uint64_t last_recovery_applied_ = 0;

  // EWO mirror batch buffer: (space state, key) pairs awaiting flush. Spaces
  // are add-only and unique_ptr-owned, so the pointers stay valid and the
  // flush avoids a map lookup per buffered entry.
  std::vector<std::pair<const EwoSpaceState*, std::uint64_t>> mirror_buffer_;

  TimeNs last_lww_timestamp_ = 0;  ///< per-switch monotone LWW clock (§6.2)

  bool authoritative_ = false;  ///< serving a redirected read at the tail
  std::function<void(pisa::PacketContext&)> nf_reentry_;

  Rng rng_;
  std::vector<sim::TimerHandle> background_;
};

/// Abstract network function: application logic running on every switch.
class NfApp {
 public:
  virtual ~NfApp() = default;

  /// Allocates NF-private stateful objects on the switch (optional).
  virtual void setup(pisa::Switch& sw, ShmRuntime& runtime) {
    (void)sw;
    (void)runtime;
  }

  /// Per-packet processing, with shared state accessed through the runtime.
  virtual void process(pisa::PacketContext& ctx, ShmRuntime& runtime) = 0;
};

/// The pipeline program installed on every SwiShmem switch: dispatches
/// protocol packets to the runtime, everything else to the NF.
class ShmProgram : public pisa::PipelineProgram {
 public:
  ShmProgram(ShmRuntime& runtime, std::unique_ptr<NfApp> nf);

  void process(pisa::PacketContext& ctx) override;

  [[nodiscard]] NfApp& nf() noexcept { return *nf_; }

 private:
  ShmRuntime& runtime_;
  std::unique_ptr<NfApp> nf_;
};

}  // namespace swish::shm
