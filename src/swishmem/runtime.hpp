// The per-switch SwiShmem runtime: packet classification, protocol-engine
// dispatch, and fabric I/O.
//
// One ShmRuntime is attached to each switch. The consistency protocols
// themselves (SRO/ERO chain replication, EWO asynchronous replication, OWN
// ownership migration) live behind the ProtocolEngine interface in
// swishmem/protocols/; the runtime owns the engines, routes each space's
// operations to its engine, dispatches wire messages through a per-type
// registry, and keeps the cross-engine machinery: controller configuration,
// heartbeats, the tail redirect re-entry, and the §6.3 recovery stream
// transport. Protocol packets arrive through the installed ShmProgram, which
// dispatches UDP port kSwishPort traffic here before the NF logic sees
// anything.
#pragma once

#include <array>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <tuple>
#include <unordered_map>
#include <vector>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "packet/flow.hpp"
#include "packet/swish_wire.hpp"
#include "pisa/switch.hpp"
#include "swishmem/config.hpp"
#include "swishmem/protocols/engine.hpp"
#include "swishmem/spaces.hpp"

namespace swish::shm {

class OwnSpaceState;
class SwimAgent;

class ShmRuntime final : public EngineHost {
 public:
  /// Aggregated per-switch statistics. The counters live inside the protocol
  /// engines (each engine owns its protocol's accounting); this legacy view
  /// sums them for tests, benches, and reports. Returned BY VALUE by stats().
  struct Stats {
    // SRO/ERO writer side.
    std::uint64_t writes_submitted = 0;
    std::uint64_t writes_committed = 0;
    std::uint64_t write_retries = 0;
    std::uint64_t writes_failed = 0;       ///< gave up after max retries
    std::uint64_t writes_rejected = 0;     ///< CP buffer full
    // SRO/ERO chain side.
    std::uint64_t chain_requests_seen = 0;
    std::uint64_t chain_gap_drops = 0;     ///< out-of-order writes awaiting retry
    std::uint64_t chain_stale_epoch = 0;
    // Reads.
    std::uint64_t reads_local = 0;
    std::uint64_t reads_redirected = 0;
    std::uint64_t redirects_processed = 0;  ///< redirected reads served (at tail)
    // EWO.
    std::uint64_t ewo_reads = 0;
    std::uint64_t ewo_local_writes = 0;
    std::uint64_t ewo_updates_sent = 0;
    std::uint64_t ewo_updates_received = 0;
    std::uint64_t ewo_entries_merged = 0;   ///< entries that changed local state
    std::uint64_t sync_rounds = 0;
    std::uint64_t sync_entries_sent = 0;
    // OWN.
    std::uint64_t own_local_writes = 0;
    std::uint64_t own_acquisitions = 0;     ///< ownership migrations completed
    std::uint64_t own_revokes = 0;          ///< ownership relinquished
    // CON (the writer-side counters fold into writes_submitted/committed).
    std::uint64_t con_slots_applied = 0;    ///< consensus log entries applied here
    std::uint64_t con_elections = 0;        ///< coordinator elections completed here
    // Recovery.
    std::uint64_t recovery_chunks_sent = 0;
    std::uint64_t recovery_chunks_applied = 0;
    // Protocol bandwidth (payload + headers, per message class). Each engine
    // accounts its own protocol's bytes; the runtime adds the recovery-stream
    // and control traffic it sends itself. The per-class counters sum to
    // bytes_total (regression-tested).
    std::uint64_t bytes_write_path = 0;  ///< WriteRequest + WriteAck (incl. recovery)
    std::uint64_t bytes_ewo = 0;         ///< EwoUpdate (mirror + sync)
    std::uint64_t bytes_redirect = 0;    ///< ReadRedirect
    std::uint64_t bytes_own = 0;         ///< OwnRequest + OwnGrant + OwnUpdate
    std::uint64_t bytes_con = 0;         ///< Con* consensus traffic (incl. its redirects)
    std::uint64_t bytes_control = 0;     ///< Heartbeat (+ config pushes, if any)
    std::uint64_t bytes_int = 0;         ///< INT trailer overhead on sampled sends
    std::uint64_t bytes_total = 0;       ///< every protocol byte this switch sent
    // Writer-observed commit latency (submit -> ack), ns.
    Histogram write_latency;
  };

  ShmRuntime(pisa::Switch& sw, RuntimeConfig config, NodeId controller);
  ~ShmRuntime();  // out-of-line: SwimAgent is only forward-declared here

  ShmRuntime(const ShmRuntime&) = delete;
  ShmRuntime& operator=(const ShmRuntime&) = delete;

  // -- Setup ------------------------------------------------------------------

  /// Declares a replicated space hosted on this switch; `replicas` is the
  /// replica set (the full deployment by default; a subset for partitioned
  /// spaces, §9). Call before traffic starts, or at migration time when this
  /// switch joins a space's replica group.
  void add_space(const SpaceConfig& config, const std::vector<SwitchId>& replicas);

  /// Declares a space this switch does NOT replicate (§9 partitioning): all
  /// strong reads redirect to the space's chain tail and writes are sent to
  /// its chain head. Only engines with a remote-access path accept this
  /// (EWO and OWN spaces cannot be remote).
  void add_remote_space(const SpaceConfig& config);

  /// True when this switch hosts storage for the space.
  [[nodiscard]] bool hosts_space(std::uint32_t space) const noexcept;

  /// The switch ids this runtime's failure detector watches (the full
  /// deployment; self is filtered out). Only consulted under --membership
  /// swim; call before start().
  void set_membership_peers(std::vector<SwitchId> peers) {
    membership_peers_ = std::move(peers);
  }

  /// Starts liveness reporting — heartbeats to the controller, or the SWIM
  /// agent's probe tick, per config().membership — and the engines' periodic
  /// work (EWO sync/mirror flush, OWN backup flush). Call after all spaces
  /// exist.
  void start();

  /// Installed by ShmProgram: how to re-run the NF logic on a redirected
  /// packet at the tail.
  void set_nf_reentry(std::function<void(pisa::PacketContext&)> reentry) {
    nf_reentry_ = std::move(reentry);
  }

  // -- Configuration from the controller (management network) ------------------

  void set_chain(const pkt::ChainConfig& config);
  void set_group(const pkt::GroupConfig& config);
  [[nodiscard]] const pkt::ChainConfig& chain() const noexcept { return chain_; }

  /// Installs the chain used by one partitioned space (overrides the global
  /// chain for that space's operations).
  void set_space_chain(std::uint32_t space, const pkt::ChainConfig& config);

  // -- NF-facing register API (§5) ---------------------------------------------

  /// Read during packet processing, dispatched to the space's engine. On
  /// kRedirected the runtime has already encapsulated ctx's packet to the
  /// tail; the caller must return without emitting output.
  ReadStatus read(pisa::PacketContext* ctx, std::uint32_t space, std::uint64_t key,
                  std::uint64_t& value);

  /// Longest-prefix-match read against a sparse space holding packed
  /// prefixes (store::lpm_pack). Always local; nullopt when no prefix of the
  /// key is present or the space does not support LPM.
  [[nodiscard]] std::optional<std::uint64_t> read_lpm(std::uint32_t space, std::uint64_t key);

  /// Write of one or more ops (all in spaces of one engine). `release` runs
  /// on this switch when the write has committed per the space's consistency
  /// class. The output packet may be empty when the mutating packet produces
  /// no output.
  void write(std::vector<pkt::WriteOp> ops, pkt::Packet output,
             std::function<void(pkt::Packet&&)> release);

  /// Atomic read-modify-write (counters / allocators), dispatched to the
  /// space's engine. Returns false when the space (or its engine) does not
  /// support updates; `done` receives the new value once applied — possibly
  /// after an OWN ownership migration.
  bool update(std::uint32_t space, std::uint64_t key, std::int64_t delta, UpdateDone done);

  /// Multi-key packet transaction: submits `ops` — which may span several
  /// spaces — as ONE atomic write. All ops must be served by the same engine;
  /// returns false (performing nothing) when they span engines or name an
  /// unknown space. Under kCON the batch occupies one consensus log slot and
  /// is applied all-or-nothing on every replica, surviving coordinator
  /// failure; chain classes apply the batch as one write request (atomic per
  /// hop). `release` runs once the transaction has committed.
  bool write_txn(std::vector<pkt::WriteOp> ops, pkt::Packet output,
                 std::function<void(pkt::Packet&&)> release);

  // Legacy class-named wrappers (kept for existing NFs/tests; they dispatch
  // through the same engines as the uniform calls above).

  ReadStatus sro_read(pisa::PacketContext& ctx, std::uint32_t space, std::uint64_t key,
                      std::uint64_t& value);
  void sro_write(std::vector<pkt::WriteOp> ops, pkt::Packet output,
                 std::function<void(pkt::Packet&&)> release);
  std::uint64_t ewo_read(std::uint32_t space, std::uint64_t key);
  void ewo_write(std::uint32_t space, std::uint64_t key, std::uint64_t value);
  std::uint64_t ewo_add(std::uint32_t space, std::uint64_t key, std::int64_t delta);
  std::uint64_t ewo_set_add(std::uint32_t space, std::uint64_t key, std::uint64_t bits);

  // -- Protocol ingress ----------------------------------------------------------

  /// Consumes SwiShmem protocol packets (UDP dst port kSwishPort). Returns
  /// true when the packet was protocol traffic.
  bool handle_protocol_packet(pisa::PacketContext& ctx);

  // -- Recovery (§6.3) -------------------------------------------------------------

  /// Donor side: streams a snapshot plus all subsequently-committed writes to
  /// `target` (stop-and-wait, retransmitted), invoking `done` when the target
  /// has acknowledged everything. Called on the current tail by the
  /// controller. `space_filter` restricts the stream to one space (used by
  /// migration); by default every hosted space with replayable state is
  /// streamed.
  void start_recovery_stream(SwitchId target, std::function<void()> done,
                             std::optional<std::uint32_t> space_filter = std::nullopt);

  /// Wipes all replicated state (a replacement switch boots empty).
  void reset_state();

  // -- EngineHost (services the engines call back into) --------------------------

  [[nodiscard]] pisa::Switch& sw() noexcept override { return sw_; }
  [[nodiscard]] const RuntimeConfig& config() const noexcept override { return config_; }
  [[nodiscard]] SwitchId self() const noexcept override { return sw_.id(); }
  [[nodiscard]] const pkt::ChainConfig& chain_for(std::uint32_t space) const noexcept override;
  [[nodiscard]] const pkt::GroupConfig& group() const noexcept override { return group_; }
  [[nodiscard]] const std::vector<SwitchId>& deployment() const noexcept override {
    return deployment_;
  }
  std::size_t send(SwitchId dst, const pkt::SwishMessage& msg) override;
  /// send() plus control-class byte accounting (heartbeats, SWIM traffic);
  /// keeps the per-class counters summing to bytes_total.
  std::size_t send_control(SwitchId dst, const pkt::SwishMessage& msg);
  void report_drop(telemetry::DropReason reason, std::uint64_t detail) override;
  [[nodiscard]] NodeId controller() const noexcept { return controller_; }
  void every(TimeNs period, std::function<void()> tick) override;
  [[nodiscard]] bool authoritative() const noexcept override { return authoritative_; }
  void recovery_tap(const std::vector<pkt::WriteOp>& ops,
                    const std::vector<SeqNum>& seqs) override;
  [[nodiscard]] telemetry::SpanRecorder* spans() noexcept override { return spans_; }
  [[nodiscard]] telemetry::ConsistencyObservatory* observatory() noexcept override {
    return observatory_;
  }
  [[nodiscard]] telemetry::SpanContext active_trace() const noexcept override {
    return active_trace_;
  }
  [[nodiscard]] const telemetry::SpanContext* active_trace_ptr() const noexcept override {
    return &active_trace_;
  }
  void set_active_trace(const telemetry::SpanContext& ctx) noexcept override {
    active_trace_ = ctx;
  }

  // -- Introspection ------------------------------------------------------------

  /// Aggregated statistics (legacy view over the engines' counters).
  [[nodiscard]] Stats stats() const;

  [[nodiscard]] pisa::Switch& owner() noexcept { return sw_; }

  [[nodiscard]] bool in_chain() const noexcept;
  [[nodiscard]] bool is_head() const noexcept;
  [[nodiscard]] bool is_tail() const noexcept;

  /// Number of output packets currently buffered in CP DRAM awaiting acks.
  [[nodiscard]] std::size_t cp_buffered_packets() const noexcept;

  [[nodiscard]] const SroSpaceState* sro_space(std::uint32_t id) const;
  [[nodiscard]] const EwoSpaceState* ewo_space(std::uint32_t id) const;
  [[nodiscard]] const OwnSpaceState* own_space(std::uint32_t id) const;
  [[nodiscard]] const SroSpaceState* con_space(std::uint32_t id) const;

  /// The SWIM detector (nullptr unless started under --membership swim).
  [[nodiscard]] SwimAgent* swim() noexcept { return swim_.get(); }

  /// Engine serving a space (nullptr when the space is unknown here).
  [[nodiscard]] ProtocolEngine* engine_for_space(std::uint32_t space) const noexcept;
  /// All engines instantiated on this switch, in creation order.
  [[nodiscard]] const std::vector<std::unique_ptr<ProtocolEngine>>& engines() const noexcept {
    return engines_;
  }

 private:
  /// Engine implementing `cls`, created (and registered in the message-type
  /// dispatch table) on first use.
  ProtocolEngine& engine_for_class(ConsistencyClass cls);
  [[nodiscard]] ProtocolEngine* find_engine(ConsistencyClass cls) const noexcept;

  void on_read_redirect(const pkt::ReadRedirect& msg);

  // Recovery stream (donor transport + target cursor).
  struct RecoveryStream {
    SwitchId target = kInvalidNode;
    std::optional<std::uint32_t> space_filter;
    std::uint32_t snapshot_epoch = 0;  ///< stamped on every chunk of this stream
    /// Frozen at start_recovery_stream: one source per engine (sparse spaces
    /// pin a CoW snapshot, dense ones collect eagerly). Drained lazily, one
    /// chunk per ack, so a million-key snapshot is never materialized whole.
    std::vector<std::unique_ptr<SnapshotSource>> sources;
    bool draining = true;  ///< snapshot portion not yet exhausted
    /// Writes committed (and tapped) while the snapshot is still draining.
    /// They post-date the freeze point, so they are flushed behind the last
    /// snapshot chunk — stream order is always snapshot, then live.
    struct Tapped {
      std::vector<pkt::WriteOp> ops;
      std::vector<SeqNum> seqs;
    };
    std::deque<Tapped> tap_backlog;
    std::deque<pkt::WriteRequest> queue;  ///< chunks awaiting transmission
    std::uint64_t next_stream_seq = 1;
    std::uint64_t awaiting_ack = 0;  ///< 0 = idle
    unsigned retries = 0;
    std::function<void()> done;
    sim::TimerHandle timer;
  };
  void recovery_enqueue(std::vector<pkt::WriteOp> ops, std::vector<SeqNum> seqs);
  /// Tops the send queue up from the snapshot sources (then the tap backlog
  /// once they drain); returns true when a chunk is ready to transmit.
  bool recovery_refill();
  void recovery_send_next();
  void arm_recovery_timer(std::uint64_t expect);
  void on_recovery_ack(std::uint64_t stream_seq);
  void on_recovery_chunk(const pkt::WriteRequest& msg);
  void retire_recovery_if_joined(const std::vector<SwitchId>& chain);

  [[nodiscard]] pkt::Packet wrap(SwitchId dst, const pkt::SwishMessage& msg,
                                 const telemetry::SpanContext& ctx) const;
  void notify_config_update();

  /// Trace context to put on the wire for this send. Retransmissions of an
  /// idempotent message (same write_id/req_id to the same destination) reuse
  /// the span of the first transmission so a lossy fabric does not
  /// double-count propagation; first transmissions of a sampled chain record
  /// a send span and return its context.
  telemetry::SpanContext outgoing_trace(SwitchId dst, const pkt::SwishMessage& msg);

  [[nodiscard]] static bool chain_contains(const pkt::ChainConfig& chain, SwitchId sw) noexcept;

  pisa::Switch& sw_;
  RuntimeConfig config_;
  NodeId controller_;

  // Decentralized failure detection (config_.membership == kSwim only).
  std::unique_ptr<SwimAgent> swim_;
  std::vector<SwitchId> membership_peers_;

  // Engines (creation order) and dispatch state.
  std::vector<std::unique_ptr<ProtocolEngine>> engines_;
  std::unordered_map<std::uint32_t, ProtocolEngine*> space_engines_;
  /// Wire dispatch registry: message type -> engines claiming that type.
  std::array<std::vector<ProtocolEngine*>, pkt::kNumMsgTypes + 1> registry_{};

  std::vector<SwitchId> deployment_;  ///< replicas passed to add_space

  pkt::ChainConfig chain_;
  pkt::GroupConfig group_;
  std::unordered_map<std::uint32_t, pkt::ChainConfig> space_chains_;  ///< §9 partitioning

  // Donor-side recovery stream and target-side cursor.
  std::optional<RecoveryStream> recovery_;
  bool recovery_tap_ = false;  ///< tail forwards committed writes into the stream
  std::uint32_t recovery_epoch_counter_ = 0;  ///< donor-local stream counter
  std::uint64_t last_recovery_applied_ = 0;
  /// Stream epoch the cursor above belongs to; a chunk from a different
  /// stream (donor restart, re-homed migration) resets the cursor so the new
  /// stream's write_ids — which start from 1 again — are not dropped as dups.
  std::uint32_t last_recovery_epoch_ = 0;

  // Runtime-level counters (everything not owned by an engine), registry-
  // backed under `shm.sw<id>.*`.
  telemetry::Counter redirects_processed_;
  telemetry::Counter recovery_chunks_sent_;
  telemetry::Counter recovery_chunks_applied_;
  telemetry::Counter recovery_bytes_;  ///< recovery-stream chunks + acks
  telemetry::Counter control_bytes_;   ///< heartbeats
  telemetry::Counter int_bytes_;       ///< INT trailer bytes on sampled sends
  telemetry::Counter total_bytes_;     ///< all protocol sends from this switch
  std::uint64_t int_countdown_ = 0;    ///< 1-in-N INT sampling of protocol sends

  bool authoritative_ = false;  ///< serving a redirected read at the tail
  bool started_ = false;
  std::function<void(pisa::PacketContext&)> nf_reentry_;

  // Causal tracing (cached from the simulator; one branch when disabled).
  telemetry::SpanRecorder* spans_ = nullptr;
  telemetry::ConsistencyObservatory* observatory_ = nullptr;
  telemetry::SpanContext active_trace_;
  /// Retry-reuse guard at the send chokepoint: (message tag, idempotency id,
  /// packed sender/destination) -> span of the first transmission. Only
  /// populated while the recorder is enabled; blunt-cleared when oversized.
  std::map<std::tuple<std::uint8_t, std::uint64_t, std::uint64_t>, telemetry::SpanContext>
      send_spans_;

  Rng rng_;
  std::vector<sim::TimerHandle> background_;
};

/// Abstract network function: application logic running on every switch.
class NfApp {
 public:
  virtual ~NfApp() = default;

  /// Allocates NF-private stateful objects on the switch (optional).
  virtual void setup(pisa::Switch& sw, ShmRuntime& runtime) {
    (void)sw;
    (void)runtime;
  }

  /// Per-packet processing, with shared state accessed through the runtime.
  virtual void process(pisa::PacketContext& ctx, ShmRuntime& runtime) = 0;
};

/// The pipeline program installed on every SwiShmem switch: dispatches
/// protocol packets to the runtime, everything else to the NF.
class ShmProgram : public pisa::PipelineProgram {
 public:
  ShmProgram(ShmRuntime& runtime, std::unique_ptr<NfApp> nf);

  void process(pisa::PacketContext& ctx) override;

  [[nodiscard]] NfApp& nf() noexcept { return *nf_; }

 private:
  ShmRuntime& runtime_;
  std::unique_ptr<NfApp> nf_;
};

}  // namespace swish::shm
