#include "swishmem/spaces.hpp"

#include <algorithm>
#include <stdexcept>

namespace swish::shm {
namespace {

std::uint64_t mix64(std::uint64_t h) noexcept {
  h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ULL;
  h = (h ^ (h >> 27)) * 0x94d049bb133111ebULL;
  return h ^ (h >> 31);
}

/// Registers a sparse space's ordered store on the switch (SRAM accounting)
/// and roots its gauges at store.sw<id>.<space>.*.
store::StoreSpace& make_store(pisa::Switch& sw, const SpaceConfig& cfg) {
  return sw.add_object(std::make_unique<store::StoreSpace>(
      cfg.name + ".store", &sw.simulator().metrics(),
      "store.sw" + std::to_string(sw.id()) + "." + cfg.name + "."));
}

}  // namespace

const char* to_string(ConsistencyClass cls) noexcept {
  switch (cls) {
    case ConsistencyClass::kSRO: return "SRO";
    case ConsistencyClass::kERO: return "ERO";
    case ConsistencyClass::kEWO: return "EWO";
    case ConsistencyClass::kOWN: return "OWN";
    case ConsistencyClass::kCON: return "CON";
  }
  return "?";
}

ConsistencyClass parse_consistency_class(const std::string& s) {
  if (s == "sro" || s == "SRO") return ConsistencyClass::kSRO;
  if (s == "ero" || s == "ERO") return ConsistencyClass::kERO;
  if (s == "ewo" || s == "EWO") return ConsistencyClass::kEWO;
  if (s == "own" || s == "OWN") return ConsistencyClass::kOWN;
  if (s == "con" || s == "CON") return ConsistencyClass::kCON;
  throw std::invalid_argument("unknown consistency class: " + s);
}

const char* to_string(MergePolicy policy) noexcept {
  switch (policy) {
    case MergePolicy::kLww: return "LWW";
    case MergePolicy::kGCounter: return "G-counter";
    case MergePolicy::kPNCounter: return "PN-counter";
    case MergePolicy::kGSet: return "G-set";
  }
  return "?";
}

const char* to_string(SpaceKind kind) noexcept {
  switch (kind) {
    case SpaceKind::kDense: return "dense";
    case SpaceKind::kSparse: return "sparse";
  }
  return "?";
}

const char* to_string(MembershipProtocol protocol) noexcept {
  switch (protocol) {
    case MembershipProtocol::kHeartbeat: return "heartbeat";
    case MembershipProtocol::kSwim: return "swim";
  }
  return "?";
}

MembershipProtocol parse_membership_protocol(const std::string& s) {
  if (s == "heartbeat") return MembershipProtocol::kHeartbeat;
  if (s == "swim") return MembershipProtocol::kSwim;
  throw std::invalid_argument("unknown membership protocol: " + s +
                              " (valid: heartbeat, swim)");
}

SpaceKind parse_space_kind(const std::string& s) {
  if (s == "dense" || s == "DENSE") return SpaceKind::kDense;
  if (s == "sparse" || s == "SPARSE") return SpaceKind::kSparse;
  throw std::invalid_argument("unknown space kind: " + s);
}

SroSpaceState::SroSpaceState(pisa::Switch& sw, const SpaceConfig& config) : cfg_(config) {
  if (cfg_.cls == ConsistencyClass::kEWO) {
    throw std::invalid_argument("SroSpaceState: EWO space");
  }
  if (cfg_.sparse()) {
    // Values, guard sequences, and pending bits all live in the entries of
    // one ordered index — no side arrays, per-key guards for free.
    store_ = &make_store(sw, cfg_);
    return;
  }
  if (cfg_.table_backed) {
    table_ = &sw.add_exact_table(cfg_.name + ".table", cfg_.size, 64, cfg_.value_bits);
  } else {
    values_ = &sw.add_register_array(cfg_.name + ".values", cfg_.size, cfg_.value_bits);
  }
  const std::size_t guards = cfg_.effective_guard_slots();
  guard_seq_ = &sw.add_register_array(cfg_.name + ".seq", guards, 32);
  if (cfg_.cls == ConsistencyClass::kSRO) {
    // ERO drops the pending bits entirely (§6.1).
    guard_pending_ = &sw.add_register_array(cfg_.name + ".pending", guards, 1);
  }
}

std::size_t SroSpaceState::slot(std::uint64_t key) const noexcept {
  if (store_) return static_cast<std::size_t>(key);  // per-key guards
  return static_cast<std::size_t>(mix64(key) % cfg_.effective_guard_slots());
}

std::optional<std::uint64_t> SroSpaceState::read(std::uint64_t key) const {
  if (store_) {
    const store::Entry* e = store_->find(key);
    if (e == nullptr || e->value == kTombstone) return std::nullopt;
    return e->value;
  }
  if (table_) return table_->lookup(key);
  if (key >= values_->size()) return std::nullopt;
  return values_->read(static_cast<RegisterIndex>(key));
}

std::optional<std::uint64_t> SroSpaceState::read_lpm(std::uint64_t key) const {
  if (!store_) return std::nullopt;
  const store::Entry* e = store_->lookup_lpm(key, cfg_.key_bits);
  if (e == nullptr) return std::nullopt;
  return e->value;
}

void SroSpaceState::read_range(
    std::uint64_t lo, std::uint64_t hi,
    const std::function<bool(std::uint64_t key, std::uint64_t value)>& fn) const {
  if (!store_) return;
  store_->range(lo, hi, [&fn](const store::Entry& e) {
    if (e.value == kTombstone) return true;  // erased keys are not live
    return fn(e.key, e.value);
  });
}

void SroSpaceState::apply(std::uint64_t key, std::uint64_t value, pisa::CpToken token) {
  if (store_) {
    // Tombstones stay as entries: the guard sequence must survive erasure
    // and snapshots must carry the deletion.
    store_->upsert(key).value = value;
    return;
  }
  if (table_) {
    if (value == kTombstone) {
      table_->erase(token, key);
      erased_.insert(key);
    } else {
      table_->insert(token, key, value);
      erased_.erase(key);
    }
    return;
  }
  if (key >= values_->size()) return;  // malformed op: ignore
  values_->write(static_cast<RegisterIndex>(key), value);
}

SeqNum SroSpaceState::guard_seq(std::size_t slot) const {
  if (store_) return key_guard_seq(static_cast<std::uint64_t>(slot));
  return guard_seq_->read(static_cast<RegisterIndex>(slot));
}

void SroSpaceState::set_guard_seq(std::size_t slot, SeqNum seq) {
  if (store_) {
    set_key_guard_seq(static_cast<std::uint64_t>(slot), seq);
    return;
  }
  guard_seq_->write(static_cast<RegisterIndex>(slot), seq);
}

bool SroSpaceState::pending(std::size_t slot) const {
  if (store_) return key_pending(static_cast<std::uint64_t>(slot));
  if (!guard_pending_) return false;
  return guard_pending_->read(static_cast<RegisterIndex>(slot)) != 0;
}

void SroSpaceState::set_pending(std::size_t slot) {
  if (store_) {
    set_key_pending(static_cast<std::uint64_t>(slot));
    return;
  }
  if (guard_pending_) guard_pending_->write(static_cast<RegisterIndex>(slot), 1);
}

void SroSpaceState::clear_pending_up_to(std::size_t slot, SeqNum acked_seq) {
  if (store_) {
    clear_key_pending_up_to(static_cast<std::uint64_t>(slot), acked_seq);
    return;
  }
  if (!guard_pending_) return;
  if (guard_seq(slot) <= acked_seq) {
    guard_pending_->write(static_cast<RegisterIndex>(slot), 0);
  }
}

SeqNum SroSpaceState::key_guard_seq(std::uint64_t key) const {
  if (store_) {
    const store::Entry* e = store_->find(key);
    return e != nullptr ? e->aux : 0;
  }
  return guard_seq_->read(static_cast<RegisterIndex>(slot(key)));
}

void SroSpaceState::set_key_guard_seq(std::uint64_t key, SeqNum seq) {
  if (store_) {
    // Guard registers are 32-bit in the dense layout too; keep parity.
    store_->upsert(key).aux = static_cast<std::uint32_t>(seq);
    return;
  }
  guard_seq_->write(static_cast<RegisterIndex>(slot(key)), seq);
}

bool SroSpaceState::key_pending(std::uint64_t key) const {
  if (store_) {
    const store::Entry* e = store_->find(key);
    return e != nullptr && (e->flags & store::Entry::kFlagPending) != 0;
  }
  return pending(slot(key));
}

void SroSpaceState::set_key_pending(std::uint64_t key) {
  if (store_) {
    if (cfg_.cls == ConsistencyClass::kSRO) {  // ERO has no pending bits
      store_->upsert(key).flags |= store::Entry::kFlagPending;
    }
    return;
  }
  set_pending(slot(key));
}

void SroSpaceState::clear_key_pending_up_to(std::uint64_t key, SeqNum acked_seq) {
  if (store_) {
    if (cfg_.cls != ConsistencyClass::kSRO) return;
    const store::Entry* e = store_->find(key);
    if (e != nullptr && (e->flags & store::Entry::kFlagPending) != 0 && e->aux <= acked_seq) {
      store_->upsert(key).flags &= static_cast<std::uint8_t>(~store::Entry::kFlagPending);
    }
    return;
  }
  clear_pending_up_to(slot(key), acked_seq);
}

std::vector<SroSpaceState::SnapshotEntry> SroSpaceState::snapshot() const {
  std::vector<SnapshotEntry> out;
  if (store_) {
    out.reserve(store_->live_keys());
    store_->for_each([&](const store::Entry& e) {
      out.push_back({pkt::WriteOp{cfg_.id, e.key, e.value}, static_cast<SeqNum>(e.aux)});
      return true;
    });
    return out;  // already key-ordered: the index iterates in key order
  }
  if (table_) {
    out.reserve(table_->entry_count() + erased_.size());
    for (const auto& [key, value] : table_->entries()) {
      out.push_back({pkt::WriteOp{cfg_.id, key, value}, guard_seq(slot(key))});
    }
    // entries() iterates in hash order; sort so snapshots (and therefore
    // recovery streams) are deterministic across runs and shard counts.
    std::sort(out.begin(), out.end(),
              [](const SnapshotEntry& a, const SnapshotEntry& b) { return a.op.key < b.op.key; });
    // Erased keys left no table entry; emit tombstones so a recovered
    // replica that held stale state does not resurrect closed connections.
    for (const std::uint64_t key : erased_) {
      out.push_back({pkt::WriteOp{cfg_.id, key, kTombstone}, guard_seq(slot(key))});
    }
  } else {
    for (std::size_t i = 0; i < values_->size(); ++i) {
      const std::uint64_t v = values_->read(static_cast<RegisterIndex>(i));
      if (v == 0) continue;  // zero registers need no transfer
      out.push_back({pkt::WriteOp{cfg_.id, i, v}, guard_seq(slot(i))});
    }
  }
  return out;
}

store::OrderedIndex::Snapshot SroSpaceState::pin_snapshot() const {
  if (store_) return store_->pin_snapshot();
  return {};
}

void SroSpaceState::reset(pisa::CpToken token) {
  if (store_) store_->clear();
  if (table_) table_->clear(token);
  if (values_) values_->fill(0);
  if (guard_seq_) guard_seq_->fill(0);
  if (guard_pending_) guard_pending_->fill(0);
  erased_.clear();
}

EwoSpaceState::EwoSpaceState(pisa::Switch& sw, const SpaceConfig& config,
                             const std::vector<SwitchId>& replicas, SwitchId self)
    : cfg_(config), self_(self), replicas_(replicas) {
  if (cfg_.cls != ConsistencyClass::kEWO) {
    throw std::invalid_argument("EwoSpaceState: non-EWO space");
  }
  self_index_ = member_slot(self_);
  if (self_index_ == replicas_.size()) {
    throw std::invalid_argument("EwoSpaceState: self not in replica list");
  }

  if (cfg_.sparse()) {
    if (cfg_.merge != MergePolicy::kLww && cfg_.merge != MergePolicy::kGSet) {
      // Counter merges need a dense per-replica vector per key; the single
      // {value, version} entry of the ordered store cannot express one.
      throw std::invalid_argument("sparse EWO spaces support LWW and G-set merges only");
    }
    store_ = &make_store(sw, cfg_);
    return;
  }

  if (cfg_.merge == MergePolicy::kLww) {
    values_ = &sw.add_register_array(cfg_.name + ".values", cfg_.size, cfg_.value_bits);
    versions_ = &sw.add_register_array(cfg_.name + ".versions", cfg_.size, 64);
    return;
  }
  if (cfg_.merge == MergePolicy::kGSet) {
    // A G-set needs no versions and no per-replica vector: OR-merge is
    // idempotent and commutative over one shared bitmap array.
    values_ = &sw.add_register_array(cfg_.name + ".bits", cfg_.size, cfg_.value_bits);
    return;
  }
  // CRDT vector: one array per replica (§6.2 / §7), pairs for PN counters.
  pos_slots_.reserve(replicas_.size());
  for (SwitchId r : replicas_) {
    pos_slots_.push_back(
        &sw.add_register_array(cfg_.name + ".pos." + std::to_string(r), cfg_.size, cfg_.value_bits));
  }
  if (cfg_.merge == MergePolicy::kPNCounter) {
    neg_slots_.reserve(replicas_.size());
    for (SwitchId r : replicas_) {
      neg_slots_.push_back(&sw.add_register_array(cfg_.name + ".neg." + std::to_string(r),
                                                  cfg_.size, cfg_.value_bits));
    }
  }
}

std::size_t EwoSpaceState::member_slot(SwitchId sw) const noexcept {
  std::size_t i = 0;
  while (i < replicas_.size() && replicas_[i] != sw) ++i;
  return i;
}

std::uint64_t EwoSpaceState::read(std::uint64_t key) const {
  if (store_) {
    const store::Entry* e = store_->find(key);
    return e != nullptr ? e->value : 0;
  }
  const auto i = static_cast<RegisterIndex>(key);
  if (cfg_.merge == MergePolicy::kLww || cfg_.merge == MergePolicy::kGSet) {
    return values_->read(i);
  }
  std::uint64_t sum = 0;
  for (const auto* arr : pos_slots_) sum += arr->read(i);
  for (const auto* arr : neg_slots_) sum -= arr->read(i);
  return sum;
}

std::optional<std::uint64_t> EwoSpaceState::read_lpm(std::uint64_t key) const {
  if (!store_) return std::nullopt;
  const store::Entry* e = store_->lookup_lpm(key, cfg_.key_bits);
  if (e == nullptr) return std::nullopt;
  return e->value;
}

void EwoSpaceState::read_range(
    std::uint64_t lo, std::uint64_t hi,
    const std::function<bool(std::uint64_t key, std::uint64_t value)>& fn) const {
  if (!store_) return;
  store_->range(lo, hi, [&fn](const store::Entry& e) { return fn(e.key, e.value); });
}

void EwoSpaceState::write_local(std::uint64_t key, std::uint64_t value, RawVersion version) {
  if (cfg_.merge != MergePolicy::kLww) {
    throw std::logic_error("write_local on CRDT space; use add_local");
  }
  if (store_) {
    store::Entry& e = store_->upsert(key);
    e.value = value;
    e.version = version;
    return;
  }
  const auto i = static_cast<RegisterIndex>(key);
  // Atomic (value, version) update: single-event packet processing (§2).
  values_->write(i, value);
  versions_->write(i, version);
}

std::uint64_t EwoSpaceState::add_local(std::uint64_t key, std::int64_t delta) {
  if (cfg_.merge == MergePolicy::kLww || cfg_.merge == MergePolicy::kGSet) {
    throw std::logic_error("add_local requires a counter space");
  }
  const auto i = static_cast<RegisterIndex>(key);
  const std::size_t me = self_index_;
  if (delta >= 0) {
    pos_slots_[me]->add(i, static_cast<std::uint64_t>(delta));
  } else {
    if (cfg_.merge != MergePolicy::kPNCounter) {
      throw std::logic_error("negative delta requires a PN-counter space");
    }
    neg_slots_[me]->add(i, static_cast<std::uint64_t>(-delta));
  }
  return read(key);
}

std::uint64_t EwoSpaceState::set_add_local(std::uint64_t key, std::uint64_t bits) {
  if (cfg_.merge != MergePolicy::kGSet) {
    throw std::logic_error("set_add_local requires a kGSet space");
  }
  if (store_) {
    store::Entry& e = store_->upsert(key);
    e.value |= bits;
    return e.value;
  }
  return values_->merge_or(static_cast<RegisterIndex>(key), bits);
}

bool EwoSpaceState::merge(const pkt::EwoEntry& entry) {
  if (store_) {
    if (cfg_.merge == MergePolicy::kGSet) {
      const store::Entry* e = store_->find(entry.key);
      const std::uint64_t before = e != nullptr ? e->value : 0;
      if ((before | entry.value) == before) return false;
      store_->upsert(entry.key).value = before | entry.value;
      return true;
    }
    // LWW: probe first so a losing entry does not materialize a key.
    const store::Entry* e = store_->find(entry.key);
    if (e != nullptr && entry.version <= e->version) return false;
    if (e == nullptr && entry.version == 0) return false;  // never-written echo
    store::Entry& w = store_->upsert(entry.key);
    w.value = entry.value;
    w.version = entry.version;
    return true;
  }
  const auto i = static_cast<RegisterIndex>(entry.key);
  if (cfg_.merge == MergePolicy::kGSet) {
    if (i >= values_->size()) return false;
    const std::uint64_t before = values_->read(i);
    return values_->merge_or(i, entry.value) != before;
  }
  if (cfg_.merge == MergePolicy::kLww) {
    if (i >= values_->size()) return false;
    if (entry.version <= versions_->read(i)) return false;
    values_->write(i, entry.value);
    versions_->write(i, entry.version);
    return true;
  }
  // CRDT: version field carries (owner << 1) | negative.
  const auto owner = static_cast<SwitchId>(entry.version >> 1);
  const bool negative = (entry.version & 1) != 0;
  const std::size_t owner_slot = member_slot(owner);
  if (owner_slot == replicas_.size()) return false;
  const auto& slots = negative ? neg_slots_ : pos_slots_;
  if (slots.empty() || i >= slots[owner_slot]->size()) return false;
  const std::uint64_t before = slots[owner_slot]->read(i);
  return slots[owner_slot]->merge_max(i, entry.value) != before;
}

void EwoSpaceState::collect_own_entries(std::uint64_t key,
                                        std::vector<pkt::EwoEntry>& out) const {
  if (store_) {
    const store::Entry* e = store_->find(key);
    if (cfg_.merge == MergePolicy::kLww) {
      // Absent keys mirror as {version 0, value 0}, matching what a dense
      // space reads from never-written registers.
      out.push_back({cfg_.id, key, e != nullptr ? e->version : 0, e != nullptr ? e->value : 0});
    } else {
      out.push_back({cfg_.id, key, 0, e != nullptr ? e->value : 0});
    }
    return;
  }
  const auto i = static_cast<RegisterIndex>(key);
  if (cfg_.merge == MergePolicy::kLww) {
    out.push_back({cfg_.id, key, versions_->read(i), values_->read(i)});
    return;
  }
  if (cfg_.merge == MergePolicy::kGSet) {
    out.push_back({cfg_.id, key, 0, values_->read(i)});
    return;
  }
  const std::size_t me = self_index_;
  out.push_back({cfg_.id, key, crdt_tag(self_, false), pos_slots_[me]->read(i)});
  if (!neg_slots_.empty()) {
    out.push_back({cfg_.id, key, crdt_tag(self_, true), neg_slots_[me]->read(i)});
  }
}

void EwoSpaceState::collect_sync_entries(std::vector<pkt::EwoEntry>& out) const {
  if (store_) {
    // Ordered index walk: sync streams are key-ordered and deterministic.
    store_->for_each([&](const store::Entry& e) {
      if (cfg_.merge == MergePolicy::kLww) {
        if (e.version != 0) out.push_back({cfg_.id, e.key, e.version, e.value});
      } else {
        if (e.value != 0) out.push_back({cfg_.id, e.key, 0, e.value});
      }
      return true;
    });
    return;
  }
  if (cfg_.merge == MergePolicy::kGSet) {
    for (std::size_t k = 0; k < cfg_.size; ++k) {
      const auto i = static_cast<RegisterIndex>(k);
      const std::uint64_t bits = values_->read(i);
      if (bits != 0) out.push_back({cfg_.id, k, 0, bits});
    }
    return;
  }
  if (cfg_.merge == MergePolicy::kLww) {
    for (std::size_t k = 0; k < cfg_.size; ++k) {
      const auto i = static_cast<RegisterIndex>(k);
      const RawVersion v = versions_->read(i);
      if (v == 0) continue;  // never written
      out.push_back({cfg_.id, k, v, values_->read(i)});
    }
    return;
  }
  for (std::size_t m = 0; m < replicas_.size(); ++m) {
    for (std::size_t k = 0; k < cfg_.size; ++k) {
      const auto i = static_cast<RegisterIndex>(k);
      const std::uint64_t pos = pos_slots_[m]->read(i);
      if (pos != 0) out.push_back({cfg_.id, k, crdt_tag(replicas_[m], false), pos});
      if (!neg_slots_.empty()) {
        const std::uint64_t neg = neg_slots_[m]->read(i);
        if (neg != 0) out.push_back({cfg_.id, k, crdt_tag(replicas_[m], true), neg});
      }
    }
  }
}

void EwoSpaceState::reset() {
  if (store_) store_->clear();
  if (values_) values_->fill(0);
  if (versions_) versions_->fill(0);
  for (auto* arr : pos_slots_) arr->fill(0);
  for (auto* arr : neg_slots_) arr->fill(0);
}

}  // namespace swish::shm
