#include "swishmem/spaces.hpp"

#include <stdexcept>

namespace swish::shm {
namespace {

std::uint64_t mix64(std::uint64_t h) noexcept {
  h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ULL;
  h = (h ^ (h >> 27)) * 0x94d049bb133111ebULL;
  return h ^ (h >> 31);
}

}  // namespace

const char* to_string(ConsistencyClass cls) noexcept {
  switch (cls) {
    case ConsistencyClass::kSRO: return "SRO";
    case ConsistencyClass::kERO: return "ERO";
    case ConsistencyClass::kEWO: return "EWO";
    case ConsistencyClass::kOWN: return "OWN";
  }
  return "?";
}

ConsistencyClass parse_consistency_class(const std::string& s) {
  if (s == "sro" || s == "SRO") return ConsistencyClass::kSRO;
  if (s == "ero" || s == "ERO") return ConsistencyClass::kERO;
  if (s == "ewo" || s == "EWO") return ConsistencyClass::kEWO;
  if (s == "own" || s == "OWN") return ConsistencyClass::kOWN;
  throw std::invalid_argument("unknown consistency class: " + s);
}

const char* to_string(MergePolicy policy) noexcept {
  switch (policy) {
    case MergePolicy::kLww: return "LWW";
    case MergePolicy::kGCounter: return "G-counter";
    case MergePolicy::kPNCounter: return "PN-counter";
    case MergePolicy::kGSet: return "G-set";
  }
  return "?";
}

SroSpaceState::SroSpaceState(pisa::Switch& sw, const SpaceConfig& config) : cfg_(config) {
  if (cfg_.cls == ConsistencyClass::kEWO) {
    throw std::invalid_argument("SroSpaceState: EWO space");
  }
  if (cfg_.table_backed) {
    table_ = &sw.add_exact_table(cfg_.name + ".table", cfg_.size, 64, cfg_.value_bits);
  } else {
    values_ = &sw.add_register_array(cfg_.name + ".values", cfg_.size, cfg_.value_bits);
  }
  const std::size_t guards = cfg_.effective_guard_slots();
  guard_seq_ = &sw.add_register_array(cfg_.name + ".seq", guards, 32);
  if (cfg_.cls == ConsistencyClass::kSRO) {
    // ERO drops the pending bits entirely (§6.1).
    guard_pending_ = &sw.add_register_array(cfg_.name + ".pending", guards, 1);
  }
}

std::size_t SroSpaceState::slot(std::uint64_t key) const noexcept {
  return static_cast<std::size_t>(mix64(key) % cfg_.effective_guard_slots());
}

std::optional<std::uint64_t> SroSpaceState::read(std::uint64_t key) const {
  if (table_) return table_->lookup(key);
  if (key >= values_->size()) return std::nullopt;
  return values_->read(static_cast<RegisterIndex>(key));
}

void SroSpaceState::apply(std::uint64_t key, std::uint64_t value, pisa::CpToken token) {
  if (table_) {
    if (value == kTombstone) {
      table_->erase(token, key);
    } else {
      table_->insert(token, key, value);
    }
    return;
  }
  if (key >= values_->size()) return;  // malformed op: ignore
  values_->write(static_cast<RegisterIndex>(key), value);
}

SeqNum SroSpaceState::guard_seq(std::size_t slot) const {
  return guard_seq_->read(static_cast<RegisterIndex>(slot));
}

void SroSpaceState::set_guard_seq(std::size_t slot, SeqNum seq) {
  guard_seq_->write(static_cast<RegisterIndex>(slot), seq);
}

bool SroSpaceState::pending(std::size_t slot) const {
  if (!guard_pending_) return false;
  return guard_pending_->read(static_cast<RegisterIndex>(slot)) != 0;
}

void SroSpaceState::set_pending(std::size_t slot) {
  if (guard_pending_) guard_pending_->write(static_cast<RegisterIndex>(slot), 1);
}

void SroSpaceState::clear_pending_up_to(std::size_t slot, SeqNum acked_seq) {
  if (!guard_pending_) return;
  if (guard_seq(slot) <= acked_seq) {
    guard_pending_->write(static_cast<RegisterIndex>(slot), 0);
  }
}

std::vector<SroSpaceState::SnapshotEntry> SroSpaceState::snapshot() const {
  std::vector<SnapshotEntry> out;
  if (table_) {
    out.reserve(table_->entry_count());
    for (const auto& [key, value] : table_->entries()) {
      out.push_back({pkt::WriteOp{cfg_.id, key, value}, guard_seq(slot(key))});
    }
  } else {
    for (std::size_t i = 0; i < values_->size(); ++i) {
      const std::uint64_t v = values_->read(static_cast<RegisterIndex>(i));
      if (v == 0) continue;  // zero registers need no transfer
      out.push_back({pkt::WriteOp{cfg_.id, i, v}, guard_seq(slot(i))});
    }
  }
  return out;
}

void SroSpaceState::reset(pisa::CpToken token) {
  if (table_) table_->clear(token);
  if (values_) values_->fill(0);
  guard_seq_->fill(0);
  if (guard_pending_) guard_pending_->fill(0);
}

EwoSpaceState::EwoSpaceState(pisa::Switch& sw, const SpaceConfig& config,
                             const std::vector<SwitchId>& replicas, SwitchId self)
    : cfg_(config), self_(self), replicas_(replicas) {
  if (cfg_.cls != ConsistencyClass::kEWO) {
    throw std::invalid_argument("EwoSpaceState: non-EWO space");
  }
  self_index_ = member_slot(self_);
  if (self_index_ == replicas_.size()) {
    throw std::invalid_argument("EwoSpaceState: self not in replica list");
  }

  if (cfg_.merge == MergePolicy::kLww) {
    values_ = &sw.add_register_array(cfg_.name + ".values", cfg_.size, cfg_.value_bits);
    versions_ = &sw.add_register_array(cfg_.name + ".versions", cfg_.size, 64);
    return;
  }
  if (cfg_.merge == MergePolicy::kGSet) {
    // A G-set needs no versions and no per-replica vector: OR-merge is
    // idempotent and commutative over one shared bitmap array.
    values_ = &sw.add_register_array(cfg_.name + ".bits", cfg_.size, cfg_.value_bits);
    return;
  }
  // CRDT vector: one array per replica (§6.2 / §7), pairs for PN counters.
  pos_slots_.reserve(replicas_.size());
  for (SwitchId r : replicas_) {
    pos_slots_.push_back(
        &sw.add_register_array(cfg_.name + ".pos." + std::to_string(r), cfg_.size, cfg_.value_bits));
  }
  if (cfg_.merge == MergePolicy::kPNCounter) {
    neg_slots_.reserve(replicas_.size());
    for (SwitchId r : replicas_) {
      neg_slots_.push_back(&sw.add_register_array(cfg_.name + ".neg." + std::to_string(r),
                                                  cfg_.size, cfg_.value_bits));
    }
  }
}

std::size_t EwoSpaceState::member_slot(SwitchId sw) const noexcept {
  std::size_t i = 0;
  while (i < replicas_.size() && replicas_[i] != sw) ++i;
  return i;
}

std::uint64_t EwoSpaceState::read(std::uint64_t key) const {
  const auto i = static_cast<RegisterIndex>(key);
  if (cfg_.merge == MergePolicy::kLww || cfg_.merge == MergePolicy::kGSet) {
    return values_->read(i);
  }
  std::uint64_t sum = 0;
  for (const auto* arr : pos_slots_) sum += arr->read(i);
  for (const auto* arr : neg_slots_) sum -= arr->read(i);
  return sum;
}

void EwoSpaceState::write_local(std::uint64_t key, std::uint64_t value, RawVersion version) {
  if (cfg_.merge != MergePolicy::kLww) {
    throw std::logic_error("write_local on CRDT space; use add_local");
  }
  const auto i = static_cast<RegisterIndex>(key);
  // Atomic (value, version) update: single-event packet processing (§2).
  values_->write(i, value);
  versions_->write(i, version);
}

std::uint64_t EwoSpaceState::add_local(std::uint64_t key, std::int64_t delta) {
  if (cfg_.merge == MergePolicy::kLww || cfg_.merge == MergePolicy::kGSet) {
    throw std::logic_error("add_local requires a counter space");
  }
  const auto i = static_cast<RegisterIndex>(key);
  const std::size_t me = self_index_;
  if (delta >= 0) {
    pos_slots_[me]->add(i, static_cast<std::uint64_t>(delta));
  } else {
    if (cfg_.merge != MergePolicy::kPNCounter) {
      throw std::logic_error("negative delta requires a PN-counter space");
    }
    neg_slots_[me]->add(i, static_cast<std::uint64_t>(-delta));
  }
  return read(key);
}

std::uint64_t EwoSpaceState::set_add_local(std::uint64_t key, std::uint64_t bits) {
  if (cfg_.merge != MergePolicy::kGSet) {
    throw std::logic_error("set_add_local requires a kGSet space");
  }
  return values_->merge_or(static_cast<RegisterIndex>(key), bits);
}

bool EwoSpaceState::merge(const pkt::EwoEntry& entry) {
  const auto i = static_cast<RegisterIndex>(entry.key);
  if (cfg_.merge == MergePolicy::kGSet) {
    if (i >= values_->size()) return false;
    const std::uint64_t before = values_->read(i);
    return values_->merge_or(i, entry.value) != before;
  }
  if (cfg_.merge == MergePolicy::kLww) {
    if (i >= values_->size()) return false;
    if (entry.version <= versions_->read(i)) return false;
    values_->write(i, entry.value);
    versions_->write(i, entry.version);
    return true;
  }
  // CRDT: version field carries (owner << 1) | negative.
  const auto owner = static_cast<SwitchId>(entry.version >> 1);
  const bool negative = (entry.version & 1) != 0;
  const std::size_t owner_slot = member_slot(owner);
  if (owner_slot == replicas_.size()) return false;
  const auto& slots = negative ? neg_slots_ : pos_slots_;
  if (slots.empty() || i >= slots[owner_slot]->size()) return false;
  const std::uint64_t before = slots[owner_slot]->read(i);
  return slots[owner_slot]->merge_max(i, entry.value) != before;
}

void EwoSpaceState::collect_own_entries(std::uint64_t key,
                                        std::vector<pkt::EwoEntry>& out) const {
  const auto i = static_cast<RegisterIndex>(key);
  if (cfg_.merge == MergePolicy::kLww) {
    out.push_back({cfg_.id, key, versions_->read(i), values_->read(i)});
    return;
  }
  if (cfg_.merge == MergePolicy::kGSet) {
    out.push_back({cfg_.id, key, 0, values_->read(i)});
    return;
  }
  const std::size_t me = self_index_;
  out.push_back({cfg_.id, key, crdt_tag(self_, false), pos_slots_[me]->read(i)});
  if (!neg_slots_.empty()) {
    out.push_back({cfg_.id, key, crdt_tag(self_, true), neg_slots_[me]->read(i)});
  }
}

void EwoSpaceState::collect_sync_entries(std::vector<pkt::EwoEntry>& out) const {
  if (cfg_.merge == MergePolicy::kGSet) {
    for (std::size_t k = 0; k < cfg_.size; ++k) {
      const auto i = static_cast<RegisterIndex>(k);
      const std::uint64_t bits = values_->read(i);
      if (bits != 0) out.push_back({cfg_.id, k, 0, bits});
    }
    return;
  }
  if (cfg_.merge == MergePolicy::kLww) {
    for (std::size_t k = 0; k < cfg_.size; ++k) {
      const auto i = static_cast<RegisterIndex>(k);
      const RawVersion v = versions_->read(i);
      if (v == 0) continue;  // never written
      out.push_back({cfg_.id, k, v, values_->read(i)});
    }
    return;
  }
  for (std::size_t m = 0; m < replicas_.size(); ++m) {
    for (std::size_t k = 0; k < cfg_.size; ++k) {
      const auto i = static_cast<RegisterIndex>(k);
      const std::uint64_t pos = pos_slots_[m]->read(i);
      if (pos != 0) out.push_back({cfg_.id, k, crdt_tag(replicas_[m], false), pos});
      if (!neg_slots_.empty()) {
        const std::uint64_t neg = neg_slots_[m]->read(i);
        if (neg != 0) out.push_back({cfg_.id, k, crdt_tag(replicas_[m], true), neg});
      }
    }
  }
}

void EwoSpaceState::reset() {
  if (values_) values_->fill(0);
  if (versions_) versions_->fill(0);
  for (auto* arr : pos_slots_) arr->fill(0);
  for (auto* arr : neg_slots_) arr->fill(0);
}

}  // namespace swish::shm
