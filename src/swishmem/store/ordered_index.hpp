// Ordered, versioned in-memory index for sparse register spaces: a
// copy-on-write B+-tree keyed by fixed-width integers, the memtx-style shape
// of Tarantool's bps_tree (ROADMAP item 5). Three properties the flat
// register arrays cannot give:
//
//   * sparse population — millions of addressable keys, memory proportional
//     to live entries (a leaf costs ~kLeafCap entries; nothing is allocated
//     for absent keys);
//   * ordered iteration — in-order walks, range scans, and longest-prefix
//     match over packed (prefix, length) keys, all deterministic across runs
//     and shard counts because the order is the key order, not a hash order;
//   * O(1) consistent snapshots — Snapshot pins the root; subsequent writes
//     path-copy any node a pin still references (use_count > 1) and mutate
//     in place otherwise, so a recovery/migration donor can stream a frozen
//     image while writes continue (§6.3 without the stop-the-world pause).
//
// Nodes are std::shared_ptr-linked; a released snapshot drops its subtree
// references and the frozen pages free immediately (no GC, no leak — the
// ASan gate in tools/check.sh verifies). All counters (alive nodes, CoW
// copies, live entries, pins) live in a Counters block shared by the index
// and every outstanding snapshot, so memory accounting stays truthful even
// while pins hold pages the live tree has already replaced.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

namespace swish::shm::store {

/// Erase marker: entries whose value is kStoreTombstone are "deleted" keys
/// kept as first-class entries so guard sequences survive erasure and
/// snapshots/replays carry the deletion (matches shm::kTombstone).
inline constexpr std::uint64_t kStoreTombstone = ~0ULL;

/// One live key. `version` is protocol-defined (LWW version, OWN write
/// counter); `aux` is a 32-bit protocol side-slot (SRO guard sequence, OWN
/// directory owner+1); `flags` holds protocol bits (SRO pending / OWN owned).
struct Entry {
  std::uint64_t key = 0;
  std::uint64_t value = 0;
  std::uint64_t version = 0;
  std::uint32_t aux = 0;
  std::uint8_t flags = 0;

  static constexpr std::uint8_t kFlagPending = 1;  ///< SRO pending bit
  static constexpr std::uint8_t kFlagOwned = 1;    ///< OWN ownership bit
};

// -- Longest-prefix-match key packing -----------------------------------------
//
// LPM state is stored under composite keys ordered by (masked prefix, length):
// pack(prefix, len) = (prefix & mask(len)) << 8 | len. Lookup probes lengths
// from key_bits down to 0, so the logical key width must leave 8 bits of
// headroom (key_bits <= 56).

inline constexpr unsigned kLpmLenBits = 8;
inline constexpr unsigned kMaxLpmKeyBits = 64 - kLpmLenBits;

/// High-`len`-bit mask of a `key_bits`-wide key (len == 0 -> 0, the default
/// route that matches everything).
constexpr std::uint64_t lpm_mask(unsigned prefix_len, unsigned key_bits) noexcept {
  if (prefix_len == 0) return 0;
  const std::uint64_t full = key_bits >= 64 ? ~0ULL : ((1ULL << key_bits) - 1);
  return full & ~((prefix_len >= key_bits) ? 0ULL : ((1ULL << (key_bits - prefix_len)) - 1));
}

/// Packs (prefix, prefix_len) into one ordered index key. Throws when
/// key_bits > kMaxLpmKeyBits or prefix_len > key_bits.
std::uint64_t lpm_pack(std::uint64_t prefix, unsigned prefix_len, unsigned key_bits);

class OrderedIndex {
 public:
  /// Per-entry visitor; return false to stop the walk early.
  using Visitor = std::function<bool(const Entry&)>;

  /// Aggregate allocation/snapshot accounting, shared with outstanding
  /// snapshots so pinned-but-replaced pages stay counted until released.
  struct Counters {
    std::size_t leaves = 0;
    std::size_t inners = 0;
    std::size_t entries = 0;         ///< live entries in the *current* tree
    std::uint64_t cow_copies = 0;    ///< nodes cloned because a pin shared them
    std::size_t pins = 0;            ///< outstanding snapshots
    std::function<void()> observer;  ///< fired after pin create/release
  };

  OrderedIndex();
  ~OrderedIndex();
  OrderedIndex(const OrderedIndex&) = delete;
  OrderedIndex& operator=(const OrderedIndex&) = delete;

  /// Returns the entry for `key`, inserting a zeroed one if absent. The
  /// mutation path-copies every node still referenced by a snapshot, so the
  /// returned reference is safe to write through. Valid until the next
  /// structural change (insert of another key / clear).
  Entry& upsert(std::uint64_t key);

  /// Read-only lookup; nullptr when the key has no entry (tombstones are
  /// entries and ARE returned — semantics belong to the caller).
  [[nodiscard]] const Entry* find(std::uint64_t key) const noexcept;

  /// In-order walk over all entries (including tombstones).
  void for_each(const Visitor& fn) const;
  /// In-order walk over keys in [lo, hi).
  void range(std::uint64_t lo, std::uint64_t hi, const Visitor& fn) const;

  /// Longest-prefix match over lpm_pack()ed keys: probes prefix lengths
  /// key_bits..0, skipping tombstone entries; nullptr when nothing matches.
  [[nodiscard]] const Entry* lookup_lpm(std::uint64_t key, unsigned key_bits) const noexcept;

  /// O(1) frozen view of the current tree. Writes after the pin never alter
  /// what the snapshot sees; the pin holds the frozen pages alive until the
  /// Snapshot is destroyed.
  class Snapshot {
   public:
    Snapshot() = default;
    ~Snapshot();
    Snapshot(Snapshot&&) noexcept = default;
    Snapshot& operator=(Snapshot&& other) noexcept;
    Snapshot(const Snapshot&) = delete;
    Snapshot& operator=(const Snapshot&) = delete;

    [[nodiscard]] bool valid() const noexcept { return counters_ != nullptr; }
    [[nodiscard]] std::size_t size() const noexcept { return entries_; }

    [[nodiscard]] const Entry* find(std::uint64_t key) const noexcept;
    void for_each(const Visitor& fn) const;
    /// In-order walk over keys in [lo, hi); returns false when the visitor
    /// stopped the walk early (the resumable-drain hook recovery uses).
    bool range(std::uint64_t lo, std::uint64_t hi, const Visitor& fn) const;
    /// In-order walk over [lo, max-key] — the whole remaining key space,
    /// which range() cannot express (its hi is exclusive). Returns false
    /// when the visitor stopped early; resume by re-scanning from the key
    /// the visitor rejected.
    bool scan(std::uint64_t lo, const Visitor& fn) const;

    /// Releases the pin early (idempotent).
    void release() noexcept;

   private:
    friend class OrderedIndex;
    Snapshot(std::shared_ptr<const void> root, std::size_t entries,
             std::shared_ptr<Counters> counters) noexcept;

    std::shared_ptr<const void> root_;  ///< opaque Node; cast internally
    std::size_t entries_ = 0;
    std::shared_ptr<Counters> counters_;
  };

  [[nodiscard]] Snapshot snapshot() const;

  /// Drops all entries. Pinned snapshots keep their frozen pages.
  void clear();

  [[nodiscard]] std::size_t size() const noexcept { return counters_->entries; }
  [[nodiscard]] bool empty() const noexcept { return counters_->entries == 0; }

  /// Bytes of every alive node — the live tree plus pages only pins still
  /// reference (the honest SRAM story: frozen pages are real memory).
  [[nodiscard]] std::size_t memory_bytes() const noexcept;

  [[nodiscard]] const Counters& counters() const noexcept { return *counters_; }
  /// Installs (or clears) the pin-change observer (gauge refresh hook).
  void set_observer(std::function<void()> fn) noexcept { counters_->observer = std::move(fn); }

 private:
  struct Node;
  using NodePtr = std::shared_ptr<Node>;

  [[nodiscard]] Node* make_unique_child(Node& parent, std::size_t child_idx);
  void split_child(Node& parent, std::size_t child_idx);
  [[nodiscard]] NodePtr clone(const Node& n);

  NodePtr root_;
  std::shared_ptr<Counters> counters_;
};

}  // namespace swish::shm::store
