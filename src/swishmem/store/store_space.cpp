#include "swishmem/store/store_space.hpp"

namespace swish::shm::store {

StoreSpace::StoreSpace(std::string name, telemetry::MetricsRegistry* reg,
                       std::string metric_prefix)
    : pisa::StatefulObject(std::move(name)) {
  if (reg != nullptr) {
    metered_ = true;
    live_keys_g_ = reg->gauge(metric_prefix + "live_keys");
    snapshot_pins_g_ = reg->gauge(metric_prefix + "snapshot_pins");
    cow_copies_g_ = reg->gauge(metric_prefix + "cow_page_copies");
    memory_g_ = reg->gauge(metric_prefix + "memory_bytes");
    // Pins are released wherever the Snapshot object dies (the recovery
    // stream, typically) — the observer keeps the gauge honest from there.
    index_.set_observer([this]() noexcept { refresh_gauges(); });
  }
}

StoreSpace::~StoreSpace() {
  // Snapshots may outlive this object; they share the index counters but
  // must not call back into freed gauges.
  index_.set_observer(nullptr);
}

Entry& StoreSpace::upsert(std::uint64_t key) {
  Entry& e = index_.upsert(key);
  refresh_gauges();
  return e;
}

void StoreSpace::clear() {
  index_.clear();
  refresh_gauges();
}

OrderedIndex::Snapshot StoreSpace::pin_snapshot() {
  OrderedIndex::Snapshot snap = index_.snapshot();
  refresh_gauges();
  return snap;
}

void StoreSpace::refresh_gauges() noexcept {
  if (!metered_) return;
  const OrderedIndex::Counters& c = index_.counters();
  live_keys_g_ = static_cast<double>(c.entries);
  snapshot_pins_g_ = static_cast<double>(c.pins);
  cow_copies_g_ = static_cast<double>(c.cow_copies);
  memory_g_ = static_cast<double>(index_.memory_bytes());
}

}  // namespace swish::shm::store
