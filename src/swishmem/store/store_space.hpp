// Switch-resident wrapper around OrderedIndex: registers the index as a PISA
// StatefulObject (so sparse spaces participate in the ~10 MB SRAM budget like
// every register array) and keeps the observatory's store.* gauges current —
// live keys, outstanding snapshot pins, and cumulative CoW page copies — so
// snapshot cost is visible in the metrics export.
#pragma once

#include <optional>
#include <string>

#include "pisa/objects.hpp"
#include "swishmem/store/ordered_index.hpp"
#include "telemetry/metrics.hpp"

namespace swish::shm::store {

class StoreSpace final : public pisa::StatefulObject {
 public:
  /// `metric_prefix` roots the gauges ("store.sw<id>.<space>."); pass an
  /// empty prefix (with reg == nullptr) for registry-less use in benches.
  StoreSpace(std::string name, telemetry::MetricsRegistry* reg, std::string metric_prefix);
  ~StoreSpace() override;

  // -- Mutation (refreshes gauges) --------------------------------------------
  Entry& upsert(std::uint64_t key);
  void clear();

  // -- Lookup -------------------------------------------------------------------
  [[nodiscard]] const Entry* find(std::uint64_t key) const noexcept {
    return index_.find(key);
  }
  [[nodiscard]] const Entry* lookup_lpm(std::uint64_t key, unsigned key_bits) const noexcept {
    return index_.lookup_lpm(key, key_bits);
  }
  void for_each(const OrderedIndex::Visitor& fn) const { index_.for_each(fn); }
  void range(std::uint64_t lo, std::uint64_t hi, const OrderedIndex::Visitor& fn) const {
    index_.range(lo, hi, fn);
  }

  // -- Snapshots ----------------------------------------------------------------
  /// Pins a frozen view; gauge updates on pin and (via the index observer)
  /// on release, wherever the Snapshot ends up dying.
  [[nodiscard]] OrderedIndex::Snapshot pin_snapshot();

  // -- Introspection -------------------------------------------------------------
  [[nodiscard]] std::size_t live_keys() const noexcept { return index_.size(); }
  [[nodiscard]] const OrderedIndex& index() const noexcept { return index_; }
  [[nodiscard]] std::size_t memory_bytes() const noexcept override {
    return index_.memory_bytes();
  }

 private:
  void refresh_gauges() noexcept;

  OrderedIndex index_;
  bool metered_ = false;
  telemetry::Gauge live_keys_g_;
  telemetry::Gauge snapshot_pins_g_;
  telemetry::Gauge cow_copies_g_;
  telemetry::Gauge memory_g_;
};

}  // namespace swish::shm::store
