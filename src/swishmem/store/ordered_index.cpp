#include "swishmem/store/ordered_index.hpp"

#include <algorithm>
#include <stdexcept>

namespace swish::shm::store {
namespace {

// Fanout tuned for cache-line-sized leaves: 16 × 32-byte entries per leaf,
// 16 children per inner node. Height stays ≤ 6 at a million keys.
constexpr std::size_t kLeafCap = 16;
constexpr std::size_t kInnerCap = 16;

}  // namespace

std::uint64_t lpm_pack(std::uint64_t prefix, unsigned prefix_len, unsigned key_bits) {
  if (key_bits == 0 || key_bits > kMaxLpmKeyBits) {
    throw std::invalid_argument("lpm_pack: key_bits must be 1.." +
                                std::to_string(kMaxLpmKeyBits));
  }
  if (prefix_len > key_bits) {
    throw std::invalid_argument("lpm_pack: prefix_len exceeds key_bits");
  }
  return ((prefix & lpm_mask(prefix_len, key_bits)) << kLpmLenBits) | prefix_len;
}

struct OrderedIndex::Node {
  Node(bool is_leaf, std::shared_ptr<Counters> c) : leaf(is_leaf), counters(std::move(c)) {
    if (leaf) {
      ++counters->leaves;
    } else {
      ++counters->inners;
    }
  }
  ~Node() {
    if (leaf) {
      --counters->leaves;
    } else {
      --counters->inners;
    }
  }
  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  [[nodiscard]] bool full() const noexcept {
    return leaf ? entries.size() >= kLeafCap : children.size() >= kInnerCap;
  }

  /// Child subtree covering `key`: keys[i] is the smallest key of
  /// children[i+1], so the child index is the count of separators <= key.
  [[nodiscard]] std::size_t child_index(std::uint64_t key) const noexcept {
    return static_cast<std::size_t>(
        std::upper_bound(keys.begin(), keys.end(), key) - keys.begin());
  }

  const bool leaf;
  std::vector<Entry> entries;           // leaf: sorted by key
  std::vector<std::uint64_t> keys;      // inner: separators (children.size()-1)
  std::vector<NodePtr> children;        // inner
  std::shared_ptr<Counters> counters;   // alive-node accounting outlives the index
};

OrderedIndex::OrderedIndex() : counters_(std::make_shared<Counters>()) {}

OrderedIndex::~OrderedIndex() {
  // Outstanding snapshots keep counters_ (and their pinned nodes) alive; the
  // observer must not outlive whoever installed it.
  counters_->observer = nullptr;
}

OrderedIndex::NodePtr OrderedIndex::clone(const Node& n) {
  auto copy = std::make_shared<Node>(n.leaf, counters_);
  copy->entries = n.entries;
  copy->keys = n.keys;
  copy->children = n.children;
  ++counters_->cow_copies;
  return copy;
}

OrderedIndex::Node* OrderedIndex::make_unique_child(Node& parent, std::size_t child_idx) {
  NodePtr& c = parent.children[child_idx];
  if (c.use_count() > 1) c = clone(*c);
  return c.get();
}

void OrderedIndex::split_child(Node& parent, std::size_t child_idx) {
  Node& c = *parent.children[child_idx];  // unique by construction
  std::uint64_t separator = 0;
  auto right = std::make_shared<Node>(c.leaf, counters_);
  if (c.leaf) {
    const std::size_t mid = c.entries.size() / 2;
    right->entries.assign(c.entries.begin() + static_cast<std::ptrdiff_t>(mid),
                          c.entries.end());
    c.entries.resize(mid);
    separator = right->entries.front().key;
  } else {
    const std::size_t mid = c.children.size() / 2;
    right->children.assign(c.children.begin() + static_cast<std::ptrdiff_t>(mid),
                           c.children.end());
    c.children.resize(mid);
    separator = c.keys[mid - 1];
    right->keys.assign(c.keys.begin() + static_cast<std::ptrdiff_t>(mid), c.keys.end());
    c.keys.resize(mid - 1);
  }
  parent.keys.insert(parent.keys.begin() + static_cast<std::ptrdiff_t>(child_idx), separator);
  parent.children.insert(parent.children.begin() + static_cast<std::ptrdiff_t>(child_idx) + 1,
                         std::move(right));
}

Entry& OrderedIndex::upsert(std::uint64_t key) {
  if (!root_) {
    root_ = std::make_shared<Node>(/*is_leaf=*/true, counters_);
  }
  if (root_.use_count() > 1) root_ = clone(*root_);
  if (root_->full()) {
    auto grown = std::make_shared<Node>(/*is_leaf=*/false, counters_);
    grown->children.push_back(root_);
    root_ = std::move(grown);
    split_child(*root_, 0);
  }
  Node* n = root_.get();
  while (!n->leaf) {
    std::size_t i = n->child_index(key);
    Node* c = make_unique_child(*n, i);
    if (c->full()) {
      split_child(*n, i);
      i = n->child_index(key);
      c = n->children[i].get();  // both split halves are freshly unique
    }
    n = c;
  }
  auto it = std::lower_bound(n->entries.begin(), n->entries.end(), key,
                             [](const Entry& e, std::uint64_t k) { return e.key < k; });
  if (it != n->entries.end() && it->key == key) return *it;
  it = n->entries.insert(it, Entry{.key = key});
  ++counters_->entries;
  return *it;
}

// Shared walk/find helpers: Snapshot holds only an opaque root, so these are
// free templates over the node type instead of members.
namespace {

template <typename NodeT>
const Entry* find_in(const NodeT* n, std::uint64_t key) noexcept {
  while (n != nullptr && !n->leaf) n = n->children[n->child_index(key)].get();
  if (n == nullptr) return nullptr;
  auto it = std::lower_bound(n->entries.begin(), n->entries.end(), key,
                             [](const Entry& e, std::uint64_t k) { return e.key < k; });
  if (it == n->entries.end() || it->key != key) return nullptr;
  return &*it;
}

/// In-order walk over keys in [lo, hi] (hi inclusive, so the full key space
/// is expressible); returns false when the visitor stopped the walk early.
template <typename NodeT>
bool walk(const NodeT* n, std::uint64_t lo, std::uint64_t hi,
          const OrderedIndex::Visitor& fn) {
  if (n == nullptr || lo > hi) return true;
  if (n->leaf) {
    auto it = std::lower_bound(n->entries.begin(), n->entries.end(), lo,
                               [](const Entry& e, std::uint64_t k) { return e.key < k; });
    for (; it != n->entries.end() && it->key <= hi; ++it) {
      if (!fn(*it)) return false;
    }
    return true;
  }
  const std::size_t first = n->child_index(lo);
  const std::size_t last = n->child_index(hi);
  for (std::size_t i = first; i <= last; ++i) {
    if (!walk(n->children[i].get(), lo, hi, fn)) return false;
  }
  return true;
}

template <typename NodeT, typename FindFn>
const Entry* lpm_probe(const NodeT* root, std::uint64_t key, unsigned key_bits,
                       FindFn&& find) noexcept {
  if (root == nullptr || key_bits == 0 || key_bits > kMaxLpmKeyBits) return nullptr;
  for (unsigned len = key_bits + 1; len-- > 0;) {
    const std::uint64_t probe = ((key & lpm_mask(len, key_bits)) << kLpmLenBits) | len;
    const Entry* e = find(probe);
    if (e != nullptr && e->value != kStoreTombstone) return e;
  }
  return nullptr;
}

}  // namespace

const Entry* OrderedIndex::find(std::uint64_t key) const noexcept {
  return find_in(root_.get(), key);
}

void OrderedIndex::for_each(const Visitor& fn) const {
  walk(root_.get(), 0, ~0ULL, fn);
}

void OrderedIndex::range(std::uint64_t lo, std::uint64_t hi, const Visitor& fn) const {
  if (hi == 0) return;
  walk(root_.get(), lo, hi - 1, fn);
}

const Entry* OrderedIndex::lookup_lpm(std::uint64_t key, unsigned key_bits) const noexcept {
  return lpm_probe(root_.get(), key, key_bits,
                   [this](std::uint64_t k) { return find(k); });
}

OrderedIndex::Snapshot OrderedIndex::snapshot() const {
  ++counters_->pins;
  if (counters_->observer) counters_->observer();
  return Snapshot(std::static_pointer_cast<const void>(root_), counters_->entries, counters_);
}

void OrderedIndex::clear() {
  root_.reset();
  counters_->entries = 0;
}

std::size_t OrderedIndex::memory_bytes() const noexcept {
  // Fixed-capacity estimate per node class: deterministic and honest about
  // frozen pages — pinned-but-replaced nodes stay in leaves/inners until the
  // last snapshot referencing them dies.
  const std::size_t leaf_bytes = sizeof(Node) + kLeafCap * sizeof(Entry);
  const std::size_t inner_bytes =
      sizeof(Node) + kInnerCap * (sizeof(std::uint64_t) + sizeof(NodePtr));
  return counters_->leaves * leaf_bytes + counters_->inners * inner_bytes;
}

// -- Snapshot -----------------------------------------------------------------

OrderedIndex::Snapshot::Snapshot(std::shared_ptr<const void> root, std::size_t entries,
                                 std::shared_ptr<Counters> counters) noexcept
    : root_(std::move(root)), entries_(entries), counters_(std::move(counters)) {}

OrderedIndex::Snapshot::~Snapshot() { release(); }

OrderedIndex::Snapshot& OrderedIndex::Snapshot::operator=(Snapshot&& other) noexcept {
  if (this != &other) {
    release();
    root_ = std::move(other.root_);
    entries_ = other.entries_;
    counters_ = std::move(other.counters_);
    other.entries_ = 0;
  }
  return *this;
}

void OrderedIndex::Snapshot::release() noexcept {
  if (counters_) {
    --counters_->pins;
    if (counters_->observer) counters_->observer();
    counters_.reset();
  }
  root_.reset();
  entries_ = 0;
}

const Entry* OrderedIndex::Snapshot::find(std::uint64_t key) const noexcept {
  return find_in(static_cast<const Node*>(root_.get()), key);
}

void OrderedIndex::Snapshot::for_each(const Visitor& fn) const {
  walk(static_cast<const Node*>(root_.get()), 0, ~0ULL, fn);
}

bool OrderedIndex::Snapshot::range(std::uint64_t lo, std::uint64_t hi,
                                   const Visitor& fn) const {
  if (hi == 0) return true;
  return walk(static_cast<const Node*>(root_.get()), lo, hi - 1, fn);
}

bool OrderedIndex::Snapshot::scan(std::uint64_t lo, const Visitor& fn) const {
  return walk(static_cast<const Node*>(root_.get()), lo, ~0ULL, fn);
}

}  // namespace swish::shm::store
