// Per-switch storage for SwiShmem register spaces, backed by PISA stateful
// objects so switch memory accounting is real (§7 "Implementation sketch").
//
// SRO/ERO: a value store (register array, or control-plane table for
// table-backed state) plus a guard table of {sequence number, pending bit}
// per slot. Guard slots may be shared across hashed keys to save memory (§7).
//
// EWO: last-writer-wins spaces hold {value, version} pairs; CRDT counter
// spaces hold one register array per replica (the vector), merged by max.
//
// Every class also supports SpaceKind::kSparse (ROADMAP item 5): the flat
// arrays are replaced by one ordered CoW B+-tree (swishmem/store/) whose
// entries carry {value, version, guard_seq, flags} per live key. Sparse
// spaces address millions of keys with memory proportional to live keys,
// iterate in key order (deterministic snapshots), answer range/LPM reads,
// and pin O(1) consistent snapshots for stop-the-world-free recovery.
#pragma once

#include <cstdint>
#include <optional>
#include <set>
#include <vector>

#include "packet/swish_wire.hpp"
#include "pisa/switch.hpp"
#include "swishmem/config.hpp"
#include "swishmem/store/store_space.hpp"

namespace swish::shm {

/// Table-backed SRO spaces treat this value as "erase the key" (connection
/// teardown in NAT / firewall / LB tables).
inline constexpr std::uint64_t kTombstone = ~0ULL;

class SroSpaceState {
 public:
  SroSpaceState(pisa::Switch& sw, const SpaceConfig& config);

  [[nodiscard]] const SpaceConfig& config() const noexcept { return cfg_; }

  /// Guard slot of a key (hash-shared when guard_slots < size, §7). Sparse
  /// spaces keep per-key guards in the entry itself; slot(key) == key there.
  [[nodiscard]] std::size_t slot(std::uint64_t key) const noexcept;

  [[nodiscard]] std::optional<std::uint64_t> read(std::uint64_t key) const;

  /// Longest-prefix match over store::lpm_pack()ed keys; sparse spaces only
  /// (dense spaces return nullopt — they cannot express prefixes).
  [[nodiscard]] std::optional<std::uint64_t> read_lpm(std::uint64_t key) const;

  /// In-order scan of live keys in [lo, hi); sparse spaces only.
  void read_range(std::uint64_t lo, std::uint64_t hi,
                  const std::function<bool(std::uint64_t key, std::uint64_t value)>& fn) const;

  /// Applies a committed value. Table-backed spaces require the CP token
  /// (chain hops route table updates through their control planes, §6.1).
  /// kTombstone erases: dense tables drop the entry (and record the key so
  /// snapshots carry the deletion); sparse spaces keep a tombstone entry.
  void apply(std::uint64_t key, std::uint64_t value, pisa::CpToken token);

  // -- Guard table (slot-addressed; dense layout) -----------------------------

  [[nodiscard]] SeqNum guard_seq(std::size_t slot) const;
  void set_guard_seq(std::size_t slot, SeqNum seq);

  [[nodiscard]] bool pending(std::size_t slot) const;  ///< always false for ERO
  void set_pending(std::size_t slot);

  /// Clears the pending bit iff no write newer than `acked_seq` has been
  /// applied locally (a later in-flight write keeps the register pending).
  void clear_pending_up_to(std::size_t slot, SeqNum acked_seq);

  // -- Guard table (key-addressed; what the chain engine uses) -----------------
  // Dense spaces delegate to the hashed slot above (bit-identical to the old
  // behavior); sparse spaces keep the guard in the key's own entry, so there
  // is no false sharing — and no false-pending redirects.

  [[nodiscard]] SeqNum key_guard_seq(std::uint64_t key) const;
  void set_key_guard_seq(std::uint64_t key, SeqNum seq);
  [[nodiscard]] bool key_pending(std::uint64_t key) const;
  void set_key_pending(std::uint64_t key);
  void clear_key_pending_up_to(std::uint64_t key, SeqNum acked_seq);

  // -- Recovery ----------------------------------------------------------------

  /// Snapshot of all live values with the guard seq at snapshot time, used by
  /// the donor's control plane to rebuild a recovering replica (§6.3).
  /// Deterministically key-ordered. Includes tombstones (op.value ==
  /// kTombstone) for erased keys so a recovered replica that kept stale
  /// state does not resurrect closed connections.
  struct SnapshotEntry {
    pkt::WriteOp op;
    SeqNum seq;
  };
  [[nodiscard]] std::vector<SnapshotEntry> snapshot() const;

  /// Sparse spaces: O(1) CoW pin of the current state — the donor streams
  /// from the frozen view while writes continue. Dense spaces cannot pin;
  /// callers fall back to snapshot(). Returns an invalid Snapshot for dense.
  [[nodiscard]] store::OrderedIndex::Snapshot pin_snapshot() const;

  [[nodiscard]] const store::StoreSpace* sparse_store() const noexcept { return store_; }

  /// Wipes values and guards (a replacement switch boots empty).
  void reset(pisa::CpToken token);

 private:
  SpaceConfig cfg_;
  pisa::RegisterArray* values_ = nullptr;     // dense, register-backed
  pisa::ExactTable* table_ = nullptr;         // dense, table-backed
  store::StoreSpace* store_ = nullptr;        // sparse (ordered CoW index)
  pisa::RegisterArray* guard_seq_ = nullptr;      // dense only
  pisa::RegisterArray* guard_pending_ = nullptr;  // dense SRO only
  /// Dense table-backed spaces: keys erased since the last reset, with no
  /// surviving table entry to carry the deletion into snapshot(). Ordered so
  /// snapshots stay deterministic. CP DRAM metadata (8 B per erased key).
  std::set<std::uint64_t> erased_;
};

class EwoSpaceState {
 public:
  /// `replicas` is the full deployment (the paper assumes every register is
  /// replicated on every switch, §5); `self` selects this switch's own slot.
  EwoSpaceState(pisa::Switch& sw, const SpaceConfig& config,
                const std::vector<SwitchId>& replicas, SwitchId self);

  [[nodiscard]] const SpaceConfig& config() const noexcept { return cfg_; }

  /// Local read: LWW value, or the vector sum for counters (§6.2).
  [[nodiscard]] std::uint64_t read(std::uint64_t key) const;

  /// Longest-prefix match over store::lpm_pack()ed keys; sparse LWW/G-set
  /// spaces only (nullopt elsewhere, or when no prefix matches).
  [[nodiscard]] std::optional<std::uint64_t> read_lpm(std::uint64_t key) const;

  /// In-order scan of live keys in [lo, hi); sparse spaces only.
  void read_range(std::uint64_t lo, std::uint64_t hi,
                  const std::function<bool(std::uint64_t key, std::uint64_t value)>& fn) const;

  [[nodiscard]] const store::StoreSpace* sparse_store() const noexcept { return store_; }

  /// LWW local write; records the version for mirroring. Invalid for CRDTs.
  void write_local(std::uint64_t key, std::uint64_t value, RawVersion version);

  /// Counter update on this switch's own slot; negative deltas require
  /// kPNCounter. Returns the new aggregated value. Invalid for LWW/sets.
  std::uint64_t add_local(std::uint64_t key, std::int64_t delta);

  /// G-set insertion: ORs `bits` into the key's membership bitmap. Returns
  /// the new bitmap. Valid only for kGSet spaces.
  std::uint64_t set_add_local(std::uint64_t key, std::uint64_t bits);

  /// Merges one remote entry; returns true if local state changed.
  bool merge(const pkt::EwoEntry& entry);

  /// Entries describing this switch's latest knowledge of `key` for the
  /// immediate per-write mirror (own LWW winner, or own CRDT slot(s)).
  void collect_own_entries(std::uint64_t key, std::vector<pkt::EwoEntry>& out) const;

  /// Full-state scan for periodic synchronization: gossips everything this
  /// switch knows, including other replicas' slots, so a crashed broadcaster's
  /// updates still converge (§6.3 EWO failover).
  void collect_sync_entries(std::vector<pkt::EwoEntry>& out) const;

  /// Wipes all slots (a replacement switch boots empty).
  void reset();

 private:
  /// CRDT entries carry the slot owner in the version field:
  /// version = (owner_switch << 1) | is_negative_vector.
  static RawVersion crdt_tag(SwitchId owner, bool negative) noexcept {
    return (static_cast<RawVersion>(owner) << 1) | (negative ? 1 : 0);
  }

  /// Index of `sw` in replicas_, or replicas_.size() when unknown. Linear
  /// scan on purpose: deployments are a handful of switches (the paper
  /// replicates every register on every switch), and this sits on the
  /// per-merge hot path where a hash lookup costs more than the scan.
  [[nodiscard]] std::size_t member_slot(SwitchId sw) const noexcept;

  SpaceConfig cfg_;
  SwitchId self_;
  std::vector<SwitchId> replicas_;
  std::size_t self_index_ = 0;  ///< this switch's slot in replicas_

  // Dense LWW storage.
  pisa::RegisterArray* values_ = nullptr;
  pisa::RegisterArray* versions_ = nullptr;

  // Dense CRDT storage: one array per replica (plus negatives for PN).
  std::vector<pisa::RegisterArray*> pos_slots_;
  std::vector<pisa::RegisterArray*> neg_slots_;

  // Sparse storage (LWW: {value, version} per entry; G-set: value bitmap).
  // Counter merges need a per-replica vector per key and stay dense-only.
  store::StoreSpace* store_ = nullptr;
};

}  // namespace swish::shm
