// Per-switch storage for SwiShmem register spaces, backed by PISA stateful
// objects so switch memory accounting is real (§7 "Implementation sketch").
//
// SRO/ERO: a value store (register array, or control-plane table for
// table-backed state) plus a guard table of {sequence number, pending bit}
// per slot. Guard slots may be shared across hashed keys to save memory (§7).
//
// EWO: last-writer-wins spaces hold {value, version} pairs; CRDT counter
// spaces hold one register array per replica (the vector), merged by max.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "packet/swish_wire.hpp"
#include "pisa/switch.hpp"
#include "swishmem/config.hpp"

namespace swish::shm {

/// Table-backed SRO spaces treat this value as "erase the key" (connection
/// teardown in NAT / firewall / LB tables).
inline constexpr std::uint64_t kTombstone = ~0ULL;

class SroSpaceState {
 public:
  SroSpaceState(pisa::Switch& sw, const SpaceConfig& config);

  [[nodiscard]] const SpaceConfig& config() const noexcept { return cfg_; }

  /// Guard slot of a key (hash-shared when guard_slots < size, §7).
  [[nodiscard]] std::size_t slot(std::uint64_t key) const noexcept;

  [[nodiscard]] std::optional<std::uint64_t> read(std::uint64_t key) const;

  /// Applies a committed value. Table-backed spaces require the CP token
  /// (chain hops route table updates through their control planes, §6.1).
  void apply(std::uint64_t key, std::uint64_t value, pisa::CpToken token);

  // -- Guard table -----------------------------------------------------------

  [[nodiscard]] SeqNum guard_seq(std::size_t slot) const;
  void set_guard_seq(std::size_t slot, SeqNum seq);

  [[nodiscard]] bool pending(std::size_t slot) const;  ///< always false for ERO
  void set_pending(std::size_t slot);

  /// Clears the pending bit iff no write newer than `acked_seq` has been
  /// applied locally (a later in-flight write keeps the register pending).
  void clear_pending_up_to(std::size_t slot, SeqNum acked_seq);

  // -- Recovery ----------------------------------------------------------------

  /// Snapshot of all live values with the guard seq at snapshot time, used by
  /// the donor's control plane to rebuild a recovering replica (§6.3).
  struct SnapshotEntry {
    pkt::WriteOp op;
    SeqNum seq;
  };
  [[nodiscard]] std::vector<SnapshotEntry> snapshot() const;

  /// Wipes values and guards (a replacement switch boots empty).
  void reset(pisa::CpToken token);

 private:
  SpaceConfig cfg_;
  pisa::RegisterArray* values_ = nullptr;     // register-backed
  pisa::ExactTable* table_ = nullptr;         // table-backed
  pisa::RegisterArray* guard_seq_ = nullptr;
  pisa::RegisterArray* guard_pending_ = nullptr;  // null for ERO
};

class EwoSpaceState {
 public:
  /// `replicas` is the full deployment (the paper assumes every register is
  /// replicated on every switch, §5); `self` selects this switch's own slot.
  EwoSpaceState(pisa::Switch& sw, const SpaceConfig& config,
                const std::vector<SwitchId>& replicas, SwitchId self);

  [[nodiscard]] const SpaceConfig& config() const noexcept { return cfg_; }

  /// Local read: LWW value, or the vector sum for counters (§6.2).
  [[nodiscard]] std::uint64_t read(std::uint64_t key) const;

  /// LWW local write; records the version for mirroring. Invalid for CRDTs.
  void write_local(std::uint64_t key, std::uint64_t value, RawVersion version);

  /// Counter update on this switch's own slot; negative deltas require
  /// kPNCounter. Returns the new aggregated value. Invalid for LWW/sets.
  std::uint64_t add_local(std::uint64_t key, std::int64_t delta);

  /// G-set insertion: ORs `bits` into the key's membership bitmap. Returns
  /// the new bitmap. Valid only for kGSet spaces.
  std::uint64_t set_add_local(std::uint64_t key, std::uint64_t bits);

  /// Merges one remote entry; returns true if local state changed.
  bool merge(const pkt::EwoEntry& entry);

  /// Entries describing this switch's latest knowledge of `key` for the
  /// immediate per-write mirror (own LWW winner, or own CRDT slot(s)).
  void collect_own_entries(std::uint64_t key, std::vector<pkt::EwoEntry>& out) const;

  /// Full-state scan for periodic synchronization: gossips everything this
  /// switch knows, including other replicas' slots, so a crashed broadcaster's
  /// updates still converge (§6.3 EWO failover).
  void collect_sync_entries(std::vector<pkt::EwoEntry>& out) const;

  /// Wipes all slots (a replacement switch boots empty).
  void reset();

 private:
  /// CRDT entries carry the slot owner in the version field:
  /// version = (owner_switch << 1) | is_negative_vector.
  static RawVersion crdt_tag(SwitchId owner, bool negative) noexcept {
    return (static_cast<RawVersion>(owner) << 1) | (negative ? 1 : 0);
  }

  /// Index of `sw` in replicas_, or replicas_.size() when unknown. Linear
  /// scan on purpose: deployments are a handful of switches (the paper
  /// replicates every register on every switch), and this sits on the
  /// per-merge hot path where a hash lookup costs more than the scan.
  [[nodiscard]] std::size_t member_slot(SwitchId sw) const noexcept;

  SpaceConfig cfg_;
  SwitchId self_;
  std::vector<SwitchId> replicas_;
  std::size_t self_index_ = 0;  ///< this switch's slot in replicas_

  // LWW storage.
  pisa::RegisterArray* values_ = nullptr;
  pisa::RegisterArray* versions_ = nullptr;

  // CRDT storage: one array per replica (plus negatives for PN counters).
  std::vector<pisa::RegisterArray*> pos_slots_;
  std::vector<pisa::RegisterArray*> neg_slots_;
};

}  // namespace swish::shm
