// Online statistics used by benches and tests: running moments (Welford) and
// a log-bucketed latency histogram with percentile queries.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace swish {

/// Numerically-stable running mean/variance plus min/max.
class RunningStats {
 public:
  void add(double x) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return n_ ? max_ : 0.0; }
  [[nodiscard]] double sum() const noexcept { return sum_; }

  /// Merges another accumulator into this one (parallel Welford).
  void merge(const RunningStats& other) noexcept;

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Histogram over non-negative integer samples (e.g. latency in ns) with
/// geometric buckets: exact up to 128, then 64 sub-buckets per octave.
/// Percentile error is bounded by ~1.6% above the exact range.
class Histogram {
 public:
  Histogram();

  void add(std::uint64_t value) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] double mean() const noexcept;
  [[nodiscard]] std::uint64_t min() const noexcept { return count_ ? min_ : 0; }
  [[nodiscard]] std::uint64_t max() const noexcept { return count_ ? max_ : 0; }

  /// Value at quantile q in [0, 1]; returns an upper bound of the bucket.
  [[nodiscard]] std::uint64_t percentile(double q) const noexcept;

  [[nodiscard]] std::uint64_t p50() const noexcept { return percentile(0.50); }
  [[nodiscard]] std::uint64_t p99() const noexcept { return percentile(0.99); }

  void merge(const Histogram& other) noexcept;

 private:
  [[nodiscard]] static std::size_t bucket_of(std::uint64_t value) noexcept;
  [[nodiscard]] static std::uint64_t bucket_upper(std::size_t bucket) noexcept;

  std::vector<std::uint64_t> buckets_;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  std::uint64_t min_ = 0;
  std::uint64_t max_ = 0;
};

/// Formats a double with a fixed number of significant decimals, used by the
/// bench table printers ("12.3", "0.001").
std::string format_double(double v, int decimals = 3);

}  // namespace swish
