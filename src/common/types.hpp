// Fundamental identifiers and time units shared across all SwiShmem modules.
#pragma once

#include <cstdint>
#include <limits>

namespace swish {

/// Simulated time is expressed in integer nanoseconds since simulation start.
using TimeNs = std::int64_t;

inline constexpr TimeNs kNs = 1;
inline constexpr TimeNs kUs = 1000 * kNs;
inline constexpr TimeNs kMs = 1000 * kUs;
inline constexpr TimeNs kSec = 1000 * kMs;

/// Identifies a node (switch, host, or controller) in the simulated network.
using NodeId = std::uint32_t;
inline constexpr NodeId kInvalidNode = std::numeric_limits<NodeId>::max();

/// Identifies a switch acting as a replica of shared state. Switch ids are a
/// subset of node ids (every switch is a node; hosts are not switches).
using SwitchId = NodeId;

/// Index of a register within a register array (a "key" in protocol terms).
using RegisterIndex = std::uint32_t;

/// Monotonic per-key sequence number assigned by the chain head (SRO/ERO).
using SeqNum = std::uint64_t;

/// Version number carried by EWO updates (timestamp + switch-id tiebreak
/// packed by swish::shm::Version).
using RawVersion = std::uint64_t;

/// Bits-per-second link or pipeline capacity.
using Bandwidth = std::uint64_t;

inline constexpr Bandwidth kKbps = 1000;
inline constexpr Bandwidth kMbps = 1000 * kKbps;
inline constexpr Bandwidth kGbps = 1000 * kMbps;
inline constexpr Bandwidth kTbps = 1000 * kGbps;

}  // namespace swish
