#include "common/rng.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace swish {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) noexcept { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::next() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) noexcept {
  // Lemire's nearly-divisionless bounded sampling; bias is negligible for the
  // bounds used in simulation (<< 2^64).
  __extension__ using u128 = unsigned __int128;
  return static_cast<std::uint64_t>((static_cast<u128>(next()) * bound) >> 64);
}

std::uint64_t Rng::next_range(std::uint64_t lo, std::uint64_t hi) noexcept {
  return lo + next_below(hi - lo + 1);
}

double Rng::next_double() noexcept {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool Rng::chance(double p) noexcept { return next_double() < p; }

double Rng::exponential(double mean) noexcept {
  double u = next_double();
  // Avoid log(0).
  if (u <= 0.0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

double Rng::bounded_pareto(double lo, double hi, double alpha) noexcept {
  const double u = next_double();
  const double la = std::pow(lo, alpha);
  const double ha = std::pow(hi, alpha);
  return std::pow(-(u * ha - u * la - ha) / (ha * la), -1.0 / alpha);
}

Rng Rng::split() noexcept { return Rng(next()); }

ZipfGenerator::ZipfGenerator(std::uint64_t n, double theta) : n_(n) {
  if (n == 0) throw std::invalid_argument("ZipfGenerator: n must be positive");
  cdf_.resize(n);
  double sum = 0.0;
  for (std::uint64_t i = 0; i < n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i + 1), theta);
    cdf_[i] = sum;
  }
  for (auto& c : cdf_) c /= sum;
}

std::uint64_t ZipfGenerator::sample(Rng& rng) const noexcept {
  const double u = rng.next_double();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) return n_ - 1;
  return static_cast<std::uint64_t>(it - cdf_.begin());
}

}  // namespace swish
