// Bounds-checked byte buffer reader/writer with network (big-endian) order.
//
// All wire formats in src/packet serialize through these helpers so that the
// simulated packets are real byte strings: parsers can fail on truncation,
// checksums cover actual octets, and sizes reported by the bandwidth model
// are the sizes a switch would see.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace swish {

/// Error thrown when a read or write would step outside the buffer.
class BufferError : public std::runtime_error {
 public:
  explicit BufferError(const std::string& what) : std::runtime_error(what) {}
};

/// Appends big-endian integers and raw bytes to a growable byte vector.
class ByteWriter {
 public:
  ByteWriter() = default;
  explicit ByteWriter(std::size_t reserve) { bytes_.reserve(reserve); }

  void u8(std::uint8_t v) { bytes_.push_back(v); }

  void u16(std::uint16_t v) {
    bytes_.push_back(static_cast<std::uint8_t>(v >> 8));
    bytes_.push_back(static_cast<std::uint8_t>(v));
  }

  void u32(std::uint32_t v) {
    u16(static_cast<std::uint16_t>(v >> 16));
    u16(static_cast<std::uint16_t>(v));
  }

  void u64(std::uint64_t v) {
    u32(static_cast<std::uint32_t>(v >> 32));
    u32(static_cast<std::uint32_t>(v));
  }

  void raw(std::span<const std::uint8_t> data) {
    bytes_.insert(bytes_.end(), data.begin(), data.end());
  }

  /// Overwrites a previously written 16-bit field (e.g. a checksum slot).
  void patch_u16(std::size_t offset, std::uint16_t v) {
    if (offset + 2 > bytes_.size()) throw BufferError("patch_u16 out of range");
    bytes_[offset] = static_cast<std::uint8_t>(v >> 8);
    bytes_[offset + 1] = static_cast<std::uint8_t>(v);
  }

  [[nodiscard]] std::size_t size() const noexcept { return bytes_.size(); }
  [[nodiscard]] const std::vector<std::uint8_t>& bytes() const noexcept { return bytes_; }
  [[nodiscard]] std::vector<std::uint8_t> take() && { return std::move(bytes_); }

 private:
  std::vector<std::uint8_t> bytes_;
};

/// Consumes big-endian integers and raw bytes from a non-owning byte view.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}

  [[nodiscard]] std::size_t remaining() const noexcept { return data_.size() - pos_; }
  [[nodiscard]] std::size_t position() const noexcept { return pos_; }

  std::uint8_t u8() {
    require(1);
    return data_[pos_++];
  }

  std::uint16_t u16() {
    require(2);
    auto v = static_cast<std::uint16_t>((data_[pos_] << 8) | data_[pos_ + 1]);
    pos_ += 2;
    return v;
  }

  std::uint32_t u32() {
    auto hi = static_cast<std::uint32_t>(u16());
    return (hi << 16) | u16();
  }

  std::uint64_t u64() {
    auto hi = static_cast<std::uint64_t>(u32());
    return (hi << 32) | u32();
  }

  std::span<const std::uint8_t> raw(std::size_t n) {
    require(n);
    auto out = data_.subspan(pos_, n);
    pos_ += n;
    return out;
  }

  void skip(std::size_t n) {
    require(n);
    pos_ += n;
  }

 private:
  void require(std::size_t n) const {
    if (pos_ + n > data_.size()) {
      throw BufferError("buffer underrun: need " + std::to_string(n) + " bytes, have " +
                        std::to_string(data_.size() - pos_));
    }
  }

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

}  // namespace swish
