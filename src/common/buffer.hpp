// Bounds-checked byte buffer reader/writer with network (big-endian) order.
//
// All wire formats in src/packet serialize through these helpers so that the
// simulated packets are real byte strings: parsers can fail on truncation,
// checksums cover actual octets, and sizes reported by the bandwidth model
// are the sizes a switch would see.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace swish {

/// Error thrown when a read or write would step outside the buffer.
class BufferError : public std::runtime_error {
 public:
  explicit BufferError(const std::string& what) : std::runtime_error(what) {}
};

/// Appends big-endian integers and raw bytes to a growable byte vector.
class ByteWriter {
 public:
  ByteWriter() = default;
  explicit ByteWriter(std::size_t reserve) { bytes_.reserve(reserve); }

  void u8(std::uint8_t v) { bytes_.push_back(v); }

  // Multi-byte writes grow the vector once and store bytes directly, rather
  // than paying a capacity check per byte — the wire codec serializes sync
  // batches of hundreds of fields and is hot in protocol-heavy runs.
  void u16(std::uint16_t v) {
    std::uint8_t* p = grow(2);
    p[0] = static_cast<std::uint8_t>(v >> 8);
    p[1] = static_cast<std::uint8_t>(v);
  }

  void u32(std::uint32_t v) {
    std::uint8_t* p = grow(4);
    p[0] = static_cast<std::uint8_t>(v >> 24);
    p[1] = static_cast<std::uint8_t>(v >> 16);
    p[2] = static_cast<std::uint8_t>(v >> 8);
    p[3] = static_cast<std::uint8_t>(v);
  }

  void u64(std::uint64_t v) {
    std::uint8_t* p = grow(8);
    for (int i = 0; i < 8; ++i) p[i] = static_cast<std::uint8_t>(v >> (56 - 8 * i));
  }

  void raw(std::span<const std::uint8_t> data) {
    bytes_.insert(bytes_.end(), data.begin(), data.end());
  }

  /// Overwrites a previously written 16-bit field (e.g. a checksum slot).
  void patch_u16(std::size_t offset, std::uint16_t v) {
    if (offset + 2 > bytes_.size()) throw BufferError("patch_u16 out of range");
    bytes_[offset] = static_cast<std::uint8_t>(v >> 8);
    bytes_[offset + 1] = static_cast<std::uint8_t>(v);
  }

  [[nodiscard]] std::size_t size() const noexcept { return bytes_.size(); }
  [[nodiscard]] const std::vector<std::uint8_t>& bytes() const noexcept { return bytes_; }
  [[nodiscard]] std::vector<std::uint8_t> take() && { return std::move(bytes_); }

 private:
  /// Extends the buffer by `n` bytes and returns a pointer to the new region.
  std::uint8_t* grow(std::size_t n) {
    const std::size_t at = bytes_.size();
    bytes_.resize(at + n);
    return bytes_.data() + at;
  }

  std::vector<std::uint8_t> bytes_;
};

/// Consumes big-endian integers and raw bytes from a non-owning byte view.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}

  [[nodiscard]] std::size_t remaining() const noexcept { return data_.size() - pos_; }
  [[nodiscard]] std::size_t position() const noexcept { return pos_; }

  std::uint8_t u8() {
    require(1);
    return data_[pos_++];
  }

  // Multi-byte reads bounds-check once per field, not per byte.
  std::uint16_t u16() {
    require(2);
    auto v = static_cast<std::uint16_t>((data_[pos_] << 8) | data_[pos_ + 1]);
    pos_ += 2;
    return v;
  }

  std::uint32_t u32() {
    require(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v = (v << 8) | data_[pos_ + i];
    pos_ += 4;
    return v;
  }

  std::uint64_t u64() {
    require(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v = (v << 8) | data_[pos_ + i];
    pos_ += 8;
    return v;
  }

  std::span<const std::uint8_t> raw(std::size_t n) {
    require(n);
    auto out = data_.subspan(pos_, n);
    pos_ += n;
    return out;
  }

  void skip(std::size_t n) {
    require(n);
    pos_ += n;
  }

 private:
  void require(std::size_t n) const {
    if (pos_ + n > data_.size()) {
      throw BufferError("buffer underrun: need " + std::to_string(n) + " bytes, have " +
                        std::to_string(data_.size() - pos_));
    }
  }

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

}  // namespace swish
