// Deterministic random number generation and workload distributions.
//
// Simulation runs must be reproducible bit-for-bit from a seed, so all
// randomness flows through Rng (xoshiro256**) rather than std::random_device
// or unseeded engines. Distribution helpers cover the workload generator's
// needs: Zipf key popularity, Poisson inter-arrivals, bounded-Pareto flow
// sizes, and Bernoulli loss.
#pragma once

#include <cstdint>
#include <vector>

namespace swish {

/// xoshiro256** 1.0 (Blackman & Vigna), seeded via SplitMix64.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) noexcept;

  /// Uniform 64-bit value.
  std::uint64_t next() noexcept;

  /// Uniform in [0, bound). bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound) noexcept;

  /// Uniform in [lo, hi] inclusive.
  std::uint64_t next_range(std::uint64_t lo, std::uint64_t hi) noexcept;

  /// Uniform double in [0, 1).
  double next_double() noexcept;

  /// Bernoulli trial with probability p of returning true.
  bool chance(double p) noexcept;

  /// Exponentially distributed value with the given mean (> 0).
  double exponential(double mean) noexcept;

  /// Bounded Pareto over [lo, hi] with shape alpha (> 0).
  double bounded_pareto(double lo, double hi, double alpha) noexcept;

  /// Splits off an independently-seeded generator (for per-component RNGs).
  Rng split() noexcept;

 private:
  std::uint64_t s_[4];
};

/// Zipf-distributed ranks in [0, n) with exponent theta, sampled in O(1)
/// after O(n) table construction (inverse-CDF with binary search would be
/// O(log n); we use the rejection-inversion-free cumulative table because the
/// workload generator keeps n modest and samples hot).
class ZipfGenerator {
 public:
  ZipfGenerator(std::uint64_t n, double theta);

  [[nodiscard]] std::uint64_t n() const noexcept { return n_; }

  /// Samples a rank in [0, n); rank 0 is the most popular.
  std::uint64_t sample(Rng& rng) const noexcept;

 private:
  std::uint64_t n_;
  std::vector<double> cdf_;
};

}  // namespace swish
