// Aligned plain-text table printer used by every bench binary so that
// reproduced tables/figures share one readable format.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace swish {

/// Collects rows of string cells and prints them with aligned columns,
/// a header rule, and an optional caption, e.g.:
///
///   Table 1: NFs classified by access pattern
///   application | state             | write freq | ...
///   ------------+-------------------+------------+----
///   NAT         | translation table | new conn   | ...
class TextTable {
 public:
  explicit TextTable(std::string caption = {}) : caption_(std::move(caption)) {}

  void header(std::vector<std::string> cells);
  void row(std::vector<std::string> cells);

  /// Renders to the stream; safe to call with no rows (prints header only).
  void print(std::ostream& os) const;

  [[nodiscard]] std::size_t row_count() const noexcept { return rows_.size(); }

 private:
  std::string caption_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace swish
