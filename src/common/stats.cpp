#include "common/stats.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>

namespace swish {

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto n = static_cast<double>(n_ + other.n_);
  m2_ += other.m2_ + delta * delta * static_cast<double>(n_) * static_cast<double>(other.n_) / n;
  mean_ = (mean_ * static_cast<double>(n_) + other.mean_ * static_cast<double>(other.n_)) / n;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  sum_ += other.sum_;
  n_ += other.n_;
}

namespace {
constexpr std::size_t kSubBuckets = 64;        // sub-buckets per octave
constexpr std::uint64_t kExactLimit = 128;     // values < this get exact buckets
constexpr std::size_t kOctaves = 58;           // enough for 64-bit values
constexpr std::size_t kTotalBuckets = kExactLimit + kOctaves * kSubBuckets;
}  // namespace

Histogram::Histogram() : buckets_(kTotalBuckets, 0) {}

std::size_t Histogram::bucket_of(std::uint64_t value) noexcept {
  if (value < kExactLimit) return static_cast<std::size_t>(value);
  const int log2 = 63 - std::countl_zero(value);
  const int octave = log2 - 7;  // value >= 128 => log2 >= 7
  const auto sub = static_cast<std::size_t>((value >> (log2 - 6)) & (kSubBuckets - 1));
  auto idx = kExactLimit + static_cast<std::size_t>(octave) * kSubBuckets + sub;
  return std::min(idx, kTotalBuckets - 1);
}

std::uint64_t Histogram::bucket_upper(std::size_t bucket) noexcept {
  if (bucket < kExactLimit) return bucket;
  const std::size_t rel = bucket - kExactLimit;
  const std::size_t octave = rel / kSubBuckets;
  const std::size_t sub = rel % kSubBuckets;
  const int log2 = static_cast<int>(octave) + 7;
  const std::uint64_t base = 1ULL << log2;
  const std::uint64_t step = 1ULL << (log2 - 6);
  return base + step * (sub + 1) - 1;
}

void Histogram::add(std::uint64_t value) noexcept {
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += static_cast<double>(value);
  ++buckets_[bucket_of(value)];
}

double Histogram::mean() const noexcept {
  return count_ ? sum_ / static_cast<double>(count_) : 0.0;
}

std::uint64_t Histogram::percentile(double q) const noexcept {
  if (count_ == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  const auto target = static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(count_)));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i];
    if (seen >= target && buckets_[i] > 0) return std::min(bucket_upper(i), max_);
    if (seen >= target) return std::min(bucket_upper(i), max_);
  }
  return max_;
}

void Histogram::merge(const Histogram& other) noexcept {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
  for (std::size_t i = 0; i < buckets_.size(); ++i) buckets_[i] += other.buckets_[i];
}

std::string format_double(double v, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
  return buf;
}

}  // namespace swish
