// Minimal leveled logger. Simulation components log through this so tests can
// silence output and benches can enable tracing selectively.
#pragma once

#include <sstream>
#include <string_view>

namespace swish {

enum class LogLevel : int { kTrace = 0, kDebug = 1, kInfo = 2, kWarn = 3, kError = 4, kOff = 5 };

/// Global log threshold; messages below it are discarded. Defaults to kWarn
/// so tests and benches stay quiet unless they opt in.
LogLevel log_threshold() noexcept;
void set_log_threshold(LogLevel level) noexcept;

namespace detail {
void log_line(LogLevel level, std::string_view msg);
}

/// Streams all arguments into one log line: log(kInfo, "sent ", n, " pkts").
template <typename... Args>
void log(LogLevel level, Args&&... args) {
  if (level < log_threshold()) return;
  std::ostringstream os;
  (os << ... << std::forward<Args>(args));
  detail::log_line(level, os.str());
}

#define SWISH_LOG_TRACE(...) ::swish::log(::swish::LogLevel::kTrace, __VA_ARGS__)
#define SWISH_LOG_DEBUG(...) ::swish::log(::swish::LogLevel::kDebug, __VA_ARGS__)
#define SWISH_LOG_INFO(...) ::swish::log(::swish::LogLevel::kInfo, __VA_ARGS__)
#define SWISH_LOG_WARN(...) ::swish::log(::swish::LogLevel::kWarn, __VA_ARGS__)
#define SWISH_LOG_ERROR(...) ::swish::log(::swish::LogLevel::kError, __VA_ARGS__)

}  // namespace swish
