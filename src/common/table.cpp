#include "common/table.hpp"

#include <algorithm>
#include <ostream>

namespace swish {

void TextTable::header(std::vector<std::string> cells) { header_ = std::move(cells); }

void TextTable::row(std::vector<std::string> cells) { rows_.push_back(std::move(cells)); }

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size(), 0);
  auto widen = [&](const std::vector<std::string>& cells) {
    if (cells.size() > widths.size()) widths.resize(cells.size(), 0);
    for (std::size_t i = 0; i < cells.size(); ++i) widths[i] = std::max(widths[i], cells[i].size());
  };
  widen(header_);
  for (const auto& r : rows_) widen(r);

  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < widths.size(); ++i) {
      const std::string& cell = i < cells.size() ? cells[i] : std::string{};
      os << cell << std::string(widths[i] - cell.size(), ' ');
      if (i + 1 < widths.size()) os << " | ";
    }
    os << '\n';
  };

  if (!caption_.empty()) os << caption_ << '\n';
  emit(header_);
  for (std::size_t i = 0; i < widths.size(); ++i) {
    os << std::string(widths[i], '-');
    if (i + 1 < widths.size()) os << "-+-";
  }
  os << '\n';
  for (const auto& r : rows_) emit(r);
}

}  // namespace swish
