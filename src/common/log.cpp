#include "common/log.hpp"

#include <atomic>
#include <iostream>

namespace swish {
namespace {
std::atomic<LogLevel> g_threshold{LogLevel::kWarn};

constexpr std::string_view level_name(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF  ";
  }
  return "?????";
}
}  // namespace

LogLevel log_threshold() noexcept { return g_threshold.load(std::memory_order_relaxed); }

void set_log_threshold(LogLevel level) noexcept {
  g_threshold.store(level, std::memory_order_relaxed);
}

namespace detail {
void log_line(LogLevel level, std::string_view msg) {
  std::clog << '[' << level_name(level) << "] " << msg << '\n';
}
}  // namespace detail

}  // namespace swish
