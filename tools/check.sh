#!/usr/bin/env bash
# Strict pre-merge check: Debug build with warnings-as-errors plus
# ASan/UBSan and the full test suite under those sanitizers, then a
# ThreadSanitizer build (SWISH_SANITIZE=thread) running the sharded-core
# determinism and conformance suites with worker threads forced on
# (SWISH_SHARD_FORCE_THREADS=1), so the window barrier and handoff-lane
# protocol are exercised under real contention even on small machines.
# Slower than the default Release build — run before merging protocol
# changes, not on every edit.
#
#   tools/check.sh [--jobs N]
set -euo pipefail

JOBS="$(nproc)"
while [[ $# -gt 0 ]]; do
  case "$1" in
    --jobs) JOBS="$2"; shift 2 ;;
    *) echo "usage: $0 [--jobs N]" >&2; exit 2 ;;
  esac
done

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="$ROOT/build-check"

cmake -B "$BUILD" -S "$ROOT" \
  -DCMAKE_BUILD_TYPE=Debug \
  -DSWISH_WERROR=ON \
  -DSWISH_SANITIZE=ON >/dev/null
cmake --build "$BUILD" -j "$JOBS"

# halt_on_error keeps a sanitizer hit from being buried in test output.
ASAN_OPTIONS=halt_on_error=1 \
UBSAN_OPTIONS=halt_on_error=1:print_stacktrace=1 \
  ctest --test-dir "$BUILD" --output-on-failure -j "$JOBS"

# TSan pass over the multi-shard suites: the sharded-sim determinism tests,
# the consistency-conformance suite (the heaviest cross-switch protocol
# traffic), the CoW store suites (snapshot pins shared across the recovery
# path), and the INT telemetry suites (per-node drop/report logs written from
# every shard, gathered cross-shard by the health collector). TSan and ASan
# cannot share a build, hence the second tree.
TSAN_BUILD="$ROOT/build-check-tsan"
cmake -B "$TSAN_BUILD" -S "$ROOT" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DSWISH_WERROR=ON \
  -DSWISH_SANITIZE=thread >/dev/null
cmake --build "$TSAN_BUILD" -j "$JOBS"

TSAN_OPTIONS=halt_on_error=1 \
SWISH_SHARD_FORCE_THREADS=1 \
  ctest --test-dir "$TSAN_BUILD" --output-on-failure -j "$JOBS" \
    -R 'ShardedSim|Conformance|Store|Membership|Consensus|Int|MirrorOnDrop|HealthCollector'

echo
echo "check.sh: clean (Werror + ASan/UBSan + TSan sharded suites)"
