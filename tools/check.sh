#!/usr/bin/env bash
# Strict pre-merge check: Debug build with warnings-as-errors plus
# ASan/UBSan, then the full test suite under the sanitizers. Slower than the
# default Release build — run before merging protocol changes, not on every
# edit.
#
#   tools/check.sh [--jobs N]
set -euo pipefail

JOBS="$(nproc)"
while [[ $# -gt 0 ]]; do
  case "$1" in
    --jobs) JOBS="$2"; shift 2 ;;
    *) echo "usage: $0 [--jobs N]" >&2; exit 2 ;;
  esac
done

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="$ROOT/build-check"

cmake -B "$BUILD" -S "$ROOT" \
  -DCMAKE_BUILD_TYPE=Debug \
  -DSWISH_WERROR=ON \
  -DSWISH_SANITIZE=ON >/dev/null
cmake --build "$BUILD" -j "$JOBS"

# halt_on_error keeps a sanitizer hit from being buried in test output.
ASAN_OPTIONS=halt_on_error=1 \
UBSAN_OPTIONS=halt_on_error=1:print_stacktrace=1 \
  ctest --test-dir "$BUILD" --output-on-failure -j "$JOBS"

echo
echo "check.sh: clean (Werror + ASan/UBSan)"
