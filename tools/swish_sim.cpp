// swish_sim: command-line scenario runner for SwiShmem deployments.
//
// Runs one of the bundled NFs on a simulated multi-switch fabric with
// configurable topology, link model, workload, failures, and attack traffic,
// then prints a summary. Protocol traffic can be captured to a pcap file.
//
// Examples:
//   swish_sim --nf nat --switches 4 --reroute 0.3 --duration-ms 500
//   swish_sim --nf lb --kill 1:200 --flows-per-sec 1000
//   swish_sim --nf ddos --attack 60000:100:200 --sync-period-us 1000
//   swish_sim --nf firewall --loss 0.05 --pcap fabric.pcap
#include <algorithm>
#include <cmath>
#include <cstring>
#include <fstream>
#include <limits>
#include <iostream>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <thread>

#include "common/table.hpp"
#include "telemetry/collector.hpp"
#include "telemetry/export.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"
#include "nf/ddos.hpp"
#include "nf/firewall.hpp"
#include "nf/ips.hpp"
#include "nf/lb.hpp"
#include "nf/nat.hpp"
#include "nf/ratelimiter.hpp"
#include "packet/pcap.hpp"
#include "swishmem/fabric.hpp"
#include "workload/attack.hpp"
#include "workload/traffic.hpp"

using namespace swish;

namespace {

struct Options {
  std::string nf = "nat";
  std::size_t switches = 4;
  std::string shards = "1";  ///< "auto" or a count; resolved after parsing
  std::string membership = "heartbeat";
  TimeNs hb_timeout = 30 * kMs;
  TimeNs check_period = 5 * kMs;
  std::string topology = "mesh";
  std::size_t spines = 2;
  double loss = 0.0;
  TimeNs link_delay = 1 * kUs;
  double dataplane_pps = 0.0;  ///< 0 = keep the switch-config default
  double flows_per_sec = 2000;
  double packets_per_flow = 8;
  double reroute = 0.0;
  TimeNs duration = 500 * kMs;
  TimeNs sync_period = 1 * kMs;
  std::uint64_t seed = 1;
  std::vector<std::pair<std::size_t, TimeNs>> kills;
  std::vector<std::pair<std::size_t, TimeNs>> revives;
  std::optional<std::array<std::uint64_t, 3>> attack;  // pps, start_ms, dur_ms
  struct SpaceOverride {
    std::string name;
    shm::ConsistencyClass cls;
    std::optional<shm::SpaceKind> kind;  ///< unset = keep the NF's default
  };
  std::vector<SpaceOverride> space_overrides;
  std::uint64_t int_sample = 0;  ///< INT-MD sampling: 0 = off, N = 1-in-N
  unsigned int_hop_cap = 8;
  std::string health_json;
  std::string drops_json;
  std::string pcap;
  std::string metrics_json;
  std::string trace;
  std::uint32_t trace_mask = telemetry::kTraceAll;
  std::uint64_t span_sample = 0;  ///< 0 = causal tracing off
  std::string perfetto;
  std::string timeseries;
  TimeNs timeseries_period = 10 * kMs;
  std::size_t top_slowest = 10;
  bool quiet = false;
};

[[noreturn]] void usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0 << " [options]\n"
      << "  --nf nat|firewall|lb|ips|ddos|ratelimiter|none   NF to deploy (default nat)\n"
      << "  --switches N            fabric size (default 4)\n"
      << "  --shards N|auto         parallel simulation shards (default 1; auto =\n"
      << "                          min(switches, hardware threads); 1 reproduces\n"
      << "                          the single-threaded core byte-for-byte)\n"
      << "  --membership heartbeat|swim  failure-detection protocol (default\n"
      << "                          heartbeat: controller timeout scan; swim:\n"
      << "                          decentralized gossip, needs >= 2 switches)\n"
      << "  --hb-timeout-ms N       heartbeat silence before a switch is declared\n"
      << "                          failed (default 30; must exceed check period)\n"
      << "  --check-period-ms N     controller liveness scan period (default 5)\n"
      << "  --topology mesh|chain|leafspine\n"
      << "  --spines N              spine count for leafspine (default 2)\n"
      << "  --loss P                per-link loss probability (default 0)\n"
      << "  --link-delay-us N       one-way link latency (default 1)\n"
      << "  --dataplane-pps N       per-switch pipeline capacity in packets/s\n"
      << "                          (default 100000000; lower it to study queue\n"
      << "                          buildup and capacity drops under floods)\n"
      << "  --flows-per-sec N       workload connection rate (default 2000)\n"
      << "  --packets-per-flow N    mean flow length (default 8)\n"
      << "  --reroute P             per-packet ingress re-route probability\n"
      << "  --duration-ms N         traffic duration (default 500)\n"
      << "  --sync-period-us N      EWO periodic sync period (default 1000)\n"
      << "  --kill IDX:MS           fail switch IDX at MS (repeatable)\n"
      << "  --revive IDX:MS         revive switch IDX at MS (repeatable)\n"
      << "  --attack PPS:START:DUR  UDP flood (times in ms)\n"
      << "  --space NAME=CLS[:KIND] override a space's consistency class and\n"
      << "                          optionally its storage kind (CLS: sro|ero|\n"
      << "                          ewo|own|con; KIND: dense|sparse; repeatable)\n"
      << "  --int-sample N          in-band telemetry: tag 1 in N packets with an\n"
      << "                          INT-MD trailer (per-hop switch id, timestamps,\n"
      << "                          queue depth, rule hit) and run the fleet-health\n"
      << "                          collector (0 = off, the default)\n"
      << "  --int-hop-cap N         max on-wire INT hop records per packet, 1..255\n"
      << "                          (default 8; overflow sets the truncation bit)\n"
      << "  --health-json FILE      write the fleet-health scorecard as JSON\n"
      << "                          (re-readable by `analyze --health`; implies\n"
      << "                          drop forensics even without --int-sample)\n"
      << "  --drops-json FILE       write the mirror-on-drop forensic records\n"
      << "                          (typed reason, drop location, INT hop stack)\n"
      << "                          as JSON (FILE of - writes to stdout)\n"
      << "  --pcap FILE             capture all fabric traffic\n"
      << "  --metrics-json FILE     write the full metrics registry as JSON\n"
      << "                          (FILE of - writes to stdout)\n"
      << "  --trace FILE            record a flight-recorder trace and dump it\n"
      << "  --trace-mask CATS       comma list of categories (needs --trace):\n"
      << "                          " << telemetry::trace_category_list() << "\n"
      << "                          (default all)\n"
      << "  --span-sample N         causal tracing: sample 1 in N trace roots\n"
      << "                          and enable the consistency-lag observatory\n"
      << "  --perfetto FILE         write sampled spans as Chrome/Perfetto\n"
      << "                          trace-event JSON (implies --span-sample 64\n"
      << "                          unless one is given)\n"
      << "  --timeseries FILE       periodic metrics time-series CSV\n"
      << "  --timeseries-period-us N  time-series sampling period (default 10000)\n"
      << "  --top-slowest K         slowest sampled propagations in the exit\n"
      << "                          report (default 10)\n"
      << "  --seed N                RNG seed (default 1)\n"
      << "  --quiet                 summary only\n"
      << "\n"
      << "subcommand:\n"
      << "  " << argv0 << " analyze TRACE.json [--top K]\n"
      << "                          stitch a --perfetto trace back into causal\n"
      << "                          chains and print the K slowest propagations\n"
      << "  " << argv0 << " analyze --health HEALTH.json\n"
      << "                          render a --health-json fleet-health scorecard\n";
  std::exit(2);
}

// Strict numeric parsers: the whole token must be a number of the right sign,
// otherwise we exit through usage() instead of letting std::sto* throw.
std::uint64_t parse_u64(const std::string& s, const char* argv0) {
  try {
    if (s.empty() || s[0] == '-' || s[0] == '+') usage(argv0);
    std::size_t pos = 0;
    const std::uint64_t v = std::stoull(s, &pos);
    if (pos != s.size()) usage(argv0);
    return v;
  } catch (const std::logic_error&) {  // invalid_argument or out_of_range
    usage(argv0);
  }
}

TimeNs parse_time(const std::string& s, const char* argv0, TimeNs unit) {
  const auto v = static_cast<TimeNs>(parse_u64(s, argv0));
  if (v > std::numeric_limits<TimeNs>::max() / unit) usage(argv0);
  return v * unit;
}

double parse_prob_or_rate(const std::string& s, const char* argv0) {
  try {
    if (s.empty() || s[0] == '-') usage(argv0);
    std::size_t pos = 0;
    const double v = std::stod(s, &pos);
    if (pos != s.size() || !(v >= 0.0) || !std::isfinite(v)) usage(argv0);
    return v;
  } catch (const std::logic_error&) {
    usage(argv0);
  }
}

std::pair<std::size_t, TimeNs> parse_idx_ms(const std::string& s, const char* argv0) {
  const auto colon = s.find(':');
  if (colon == std::string::npos) usage(argv0);
  return {parse_u64(s.substr(0, colon), argv0), parse_time(s.substr(colon + 1), argv0, kMs)};
}

Options parse(int argc, char** argv) {
  Options opt;
  auto need = [&](int& i) -> std::string {
    if (++i >= argc) usage(argv[0]);
    return argv[i];
  };
  bool trace_mask_given = false;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--nf") opt.nf = need(i);
    else if (a == "--switches") opt.switches = parse_u64(need(i), argv[0]);
    else if (a == "--shards") opt.shards = need(i);
    else if (a == "--membership") opt.membership = need(i);
    else if (a == "--hb-timeout-ms") opt.hb_timeout = parse_time(need(i), argv[0], kMs);
    else if (a == "--check-period-ms") opt.check_period = parse_time(need(i), argv[0], kMs);
    else if (a == "--topology") opt.topology = need(i);
    else if (a == "--spines") opt.spines = parse_u64(need(i), argv[0]);
    else if (a == "--loss") opt.loss = parse_prob_or_rate(need(i), argv[0]);
    else if (a == "--link-delay-us") opt.link_delay = parse_time(need(i), argv[0], kUs);
    else if (a == "--dataplane-pps") {
      opt.dataplane_pps = static_cast<double>(parse_u64(need(i), argv[0]));
      if (opt.dataplane_pps <= 0) usage(argv[0]);
    }
    else if (a == "--flows-per-sec") opt.flows_per_sec = parse_prob_or_rate(need(i), argv[0]);
    else if (a == "--packets-per-flow")
      opt.packets_per_flow = parse_prob_or_rate(need(i), argv[0]);
    else if (a == "--reroute") opt.reroute = parse_prob_or_rate(need(i), argv[0]);
    else if (a == "--duration-ms") opt.duration = parse_time(need(i), argv[0], kMs);
    else if (a == "--sync-period-us") opt.sync_period = parse_time(need(i), argv[0], kUs);
    else if (a == "--kill") opt.kills.push_back(parse_idx_ms(need(i), argv[0]));
    else if (a == "--revive") opt.revives.push_back(parse_idx_ms(need(i), argv[0]));
    else if (a == "--attack") {
      const std::string s = need(i);
      const auto c1 = s.find(':');
      const auto c2 = c1 == std::string::npos ? std::string::npos : s.find(':', c1 + 1);
      if (c1 == std::string::npos || c2 == std::string::npos) usage(argv[0]);
      opt.attack = {{parse_u64(s.substr(0, c1), argv[0]),
                     parse_u64(s.substr(c1 + 1, c2 - c1 - 1), argv[0]),
                     parse_u64(s.substr(c2 + 1), argv[0])}};
    } else if (a == "--space") {
      const std::string s = need(i);
      const auto eq = s.find('=');
      if (eq == std::string::npos || eq == 0) usage(argv[0]);
      Options::SpaceOverride ov;
      ov.name = s.substr(0, eq);
      std::string cls = s.substr(eq + 1);
      try {
        if (const auto colon = cls.find(':'); colon != std::string::npos) {
          ov.kind = shm::parse_space_kind(cls.substr(colon + 1));
          cls.resize(colon);
        }
        ov.cls = shm::parse_consistency_class(cls);
      } catch (const std::invalid_argument&) {
        usage(argv[0]);
      }
      opt.space_overrides.push_back(std::move(ov));
    } else if (a == "--int-sample") opt.int_sample = parse_u64(need(i), argv[0]);
    else if (a == "--int-hop-cap") {
      const std::uint64_t cap = parse_u64(need(i), argv[0]);
      if (cap < 1 || cap > 255) usage(argv[0]);
      opt.int_hop_cap = static_cast<unsigned>(cap);
    } else if (a == "--health-json") opt.health_json = need(i);
    else if (a == "--drops-json") opt.drops_json = need(i);
    else if (a == "--pcap") opt.pcap = need(i);
    else if (a == "--metrics-json") opt.metrics_json = need(i);
    else if (a == "--trace") opt.trace = need(i);
    else if (a == "--trace-mask") {
      const std::string spec = need(i);
      const auto mask = telemetry::parse_trace_mask(spec);
      if (!mask) {
        std::cerr << "error: unknown category in --trace-mask '" << spec
                  << "'; valid names: " << telemetry::trace_category_list() << "\n";
        usage(argv[0]);
      }
      opt.trace_mask = *mask;
      trace_mask_given = true;
    } else if (a == "--span-sample") opt.span_sample = parse_u64(need(i), argv[0]);
    else if (a == "--perfetto") opt.perfetto = need(i);
    else if (a == "--timeseries") opt.timeseries = need(i);
    else if (a == "--timeseries-period-us")
      opt.timeseries_period = parse_time(need(i), argv[0], kUs);
    else if (a == "--top-slowest") opt.top_slowest = parse_u64(need(i), argv[0]);
    else if (a == "--seed") opt.seed = parse_u64(need(i), argv[0]);
    else if (a == "--quiet") opt.quiet = true;
    else usage(argv[0]);
  }
  if (trace_mask_given && opt.trace.empty()) {
    std::cerr << "warning: --trace-mask has no effect without --trace FILE\n";
  }
  if (opt.int_sample == 0 && opt.int_hop_cap != 8) {
    std::cerr << "warning: --int-hop-cap has no effect without --int-sample\n";
  }
  if (!opt.perfetto.empty() && opt.span_sample == 0) opt.span_sample = 64;
  if (opt.span_sample == 0 && opt.top_slowest != 10) {
    std::cerr << "warning: --top-slowest has no effect without --span-sample/--perfetto\n";
  }
  return opt;
}

/// `swish_sim analyze TRACE.json [--top K]` or `analyze --health HEALTH.json`:
/// offline stitching of a --perfetto trace into causal chains, or rendering a
/// --health-json fleet-health scorecard.
int run_analyze(int argc, char** argv) {
  std::string file;
  std::string health_file;
  std::size_t top = 10;
  for (int i = 2; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--top") {
      if (++i >= argc) usage(argv[0]);
      top = parse_u64(argv[i], argv[0]);
    } else if (a == "--health") {
      if (++i >= argc) usage(argv[0]);
      health_file = argv[i];
    } else if (file.empty()) {
      file = a;
    } else {
      usage(argv[0]);
    }
  }
  if (!health_file.empty()) {
    if (!file.empty()) usage(argv[0]);  // --health takes the whole subcommand
    std::ifstream in(health_file);
    if (!in) {
      std::cerr << "error: cannot open " << health_file << "\n";
      return 1;
    }
    try {
      telemetry::print_health_report(std::cout, in);
    } catch (const std::exception& e) {
      std::cerr << "error: " << health_file << ": " << e.what() << "\n";
      return 1;
    }
    return 0;
  }
  if (file.empty()) usage(argv[0]);
  std::ifstream in(file);
  if (!in) {
    std::cerr << "error: cannot open " << file << "\n";
    return 1;
  }
  std::vector<telemetry::Span> spans;
  try {
    spans = telemetry::read_perfetto(in);
  } catch (const std::exception& e) {
    std::cerr << "error: " << file << ": " << e.what() << "\n";
    return 1;
  }
  const auto summaries = telemetry::stitch_traces(spans);
  std::size_t total_spans = 0;
  std::size_t cross_switch = 0;
  for (const auto& s : summaries) {
    total_spans += s.span_count;
    if (s.node_count > 1) ++cross_switch;
  }
  std::cout << "trace: " << file << "\n"
            << "traces: " << summaries.size() << " (" << cross_switch << " cross-switch), "
            << total_spans << " spans\n\n";
  telemetry::print_trace_summaries(std::cout, telemetry::top_slowest(summaries, top));
  return 0;
}

const std::vector<pkt::Ipv4Addr> kBackends{{10, 1, 0, 1}, {10, 1, 0, 2}, {10, 1, 0, 3}};

/// Resolves --shards against the fabric size. Impossible combinations get a
/// clear diagnostic and exit code 2 (the contract tests/cli_swish_sim_test.sh
/// pins down) instead of a throw from deep inside Fabric.
std::size_t resolve_shards(const Options& opt) {
  std::size_t shards = 1;
  if (opt.shards == "auto") {
    if (opt.switches <= 1) {
      std::cerr << "error: --shards auto needs a multi-switch fabric to partition (got "
                << opt.switches << " switch); use --shards 1\n";
      std::exit(2);
    }
    const auto hw = static_cast<std::size_t>(std::max(1u, std::thread::hardware_concurrency()));
    shards = std::min(opt.switches, hw);
  } else {
    try {
      std::size_t pos = 0;
      shards = std::stoull(opt.shards, &pos);
      if (pos != opt.shards.size() || opt.shards[0] == '-' || opt.shards[0] == '+') {
        throw std::invalid_argument("trailing characters");
      }
    } catch (const std::logic_error&) {
      std::cerr << "error: --shards expects a count or 'auto', got '" << opt.shards << "'\n";
      std::exit(2);
    }
    if (shards == 0) {
      std::cerr << "error: --shards 0 is impossible: the simulation needs at least one "
                   "event loop; use --shards 1 (or auto)\n";
      std::exit(2);
    }
    if (shards > opt.switches) {
      std::cerr << "error: --shards " << shards << " exceeds the fabric's " << opt.switches
                << " switch(es); shards partition switches, so use at most --shards "
                << opt.switches << "\n";
      std::exit(2);
    }
  }
  if (shards > 1 && (!opt.pcap.empty() || !opt.trace.empty() || !opt.timeseries.empty())) {
    std::cerr << "error: --pcap, --trace and --timeseries observe a single global event "
                 "loop and require --shards 1\n";
    std::exit(2);
  }
  return shards;
}

/// kCON commits through majority quorums over the FULL deployment, so a kill
/// schedule that permanently drops the live replication factor below the
/// quorum size would stall every consensus write until the end of the run —
/// an impossible combination, rejected up front with exit code 2 (the same
/// contract as --shards; pinned by tests/cli_swish_sim_test.sh).
void check_con_quorum(const Options& opt) {
  const bool has_con = std::any_of(
      opt.space_overrides.begin(), opt.space_overrides.end(),
      [](const Options::SpaceOverride& ov) { return ov.cls == shm::ConsistencyClass::kCON; });
  if (!has_con) return;
  const std::size_t quorum = opt.switches / 2 + 1;
  std::size_t permanently_dead = 0;
  for (const auto& [idx, kill_at] : opt.kills) {
    bool revived_later = false;
    for (const auto& [ridx, revive_at] : opt.revives) {
      if (ridx == idx && revive_at > kill_at) revived_later = true;
    }
    if (!revived_later) ++permanently_dead;
  }
  const std::size_t survivors =
      opt.switches > permanently_dead ? opt.switches - permanently_dead : 0;
  if (survivors < quorum) {
    std::cerr << "error: --space ...=con needs a majority quorum of the deployment alive ("
              << quorum << " of " << opt.switches << " switches), but the --kill schedule "
              << "leaves only " << survivors
              << "; consensus writes would stall forever — revive switches or kill fewer\n";
    std::exit(2);
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2 && std::strcmp(argv[1], "analyze") == 0) return run_analyze(argc, argv);
  const Options opt = parse(argc, argv);

  const std::size_t num_shards = resolve_shards(opt);
  check_con_quorum(opt);

  shm::MembershipProtocol membership;
  try {
    membership = shm::parse_membership_protocol(opt.membership);
  } catch (const std::invalid_argument& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
  if (membership == shm::MembershipProtocol::kSwim && opt.switches < 2) {
    std::cerr << "error: --membership swim needs at least 2 switches to gossip (got "
              << opt.switches << "); use --membership heartbeat for a single switch\n";
    return 2;
  }

  shm::FabricConfig cfg;
  cfg.num_switches = opt.switches;
  cfg.shards = num_shards;
  cfg.seed = opt.seed;
  cfg.link.loss_probability = opt.loss;
  cfg.link.propagation_delay = opt.link_delay;
  if (opt.dataplane_pps > 0) cfg.switch_config.dataplane_pps = opt.dataplane_pps;
  cfg.runtime.sync_period = opt.sync_period;
  cfg.runtime.heartbeat_period = 5 * kMs;
  cfg.controller.membership = membership;
  cfg.controller.heartbeat_timeout = opt.hb_timeout;
  cfg.controller.check_period = opt.check_period;
  if (opt.topology == "chain") cfg.topology = shm::FabricConfig::Topology::kChain;
  else if (opt.topology == "leafspine") cfg.topology = shm::FabricConfig::Topology::kLeafSpine;
  else if (opt.topology != "mesh") usage(argv[0]);
  cfg.spine_count = opt.spines;
  cfg.int_sample_every = opt.int_sample;
  cfg.int_hop_cap = opt.int_hop_cap;

  // Construction validates the controller timing (heartbeat_timeout must
  // exceed check_period, both positive); a bad combination is a usage error
  // with exit code 2, the same contract as every other impossible flag combo.
  std::optional<shm::Fabric> fabric_storage;
  try {
    fabric_storage.emplace(cfg);
  } catch (const std::invalid_argument& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
  shm::Fabric& fabric = *fabric_storage;
  if (!opt.trace.empty()) fabric.simulator().tracer().enable(opt.trace_mask);
  // Causal tracing + consistency-lag observatory. The observatory also runs
  // for --timeseries (the CSV picks up the lag.* series) and for --int-sample
  // (the health collector derives per-class SLO burn from the lag.class.*
  // histograms). Both helpers hit every shard (at one shard: exactly the
  // legacy direct enables).
  if (opt.span_sample > 0) fabric.enable_spans(opt.span_sample);
  if (opt.span_sample > 0 || !opt.timeseries.empty() || opt.int_sample > 0) {
    fabric.enable_observatory();
  }

  // Declare the NF's spaces (applying any --space class overrides) and factory.
  std::vector<std::string> declared_spaces;
  auto add_space = [&](shm::SpaceConfig space) {
    for (const auto& ov : opt.space_overrides) {
      if (space.name != ov.name) continue;
      space.cls = ov.cls;
      if (ov.kind) {
        space.kind = *ov.kind;
        // Sparse spaces are keyed directly by the ordered index; the dense
        // hashed-table layout flag no longer applies.
        if (*ov.kind == shm::SpaceKind::kSparse) space.table_backed = false;
      }
    }
    declared_spaces.push_back(space.name);
    fabric.add_space(space);
  };
  std::vector<shm::NfApp*> apps;
  std::function<std::unique_ptr<shm::NfApp>()> factory;
  pkt::Ipv4Addr server_ip{8, 8, 8, 8};
  if (opt.nf == "nat") {
    add_space(nf::NatApp::space());
    factory = [&] {
      auto a = std::make_unique<nf::NatApp>(nf::NatApp::Config{});
      apps.push_back(a.get());
      return std::unique_ptr<shm::NfApp>(std::move(a));
    };
  } else if (opt.nf == "firewall") {
    add_space(nf::FirewallApp::space());
    add_space(nf::FirewallApp::prefix_space());  // sparse LPM blocklist
    factory = [&] {
      auto a = std::make_unique<nf::FirewallApp>(nf::FirewallApp::Config{});
      apps.push_back(a.get());
      return std::unique_ptr<shm::NfApp>(std::move(a));
    };
  } else if (opt.nf == "lb") {
    add_space(nf::LoadBalancerApp::space());
    // Override both lb.* spaces to the same class to exercise the multi-key
    // transactional install (conn entry + DIP refcount in one write).
    add_space(nf::LoadBalancerApp::refcount_space(kBackends.size()));
    server_ip = pkt::Ipv4Addr(10, 200, 0, 1);
    factory = [&] {
      auto a = std::make_unique<nf::LoadBalancerApp>(
          nf::LoadBalancerApp::Config{pkt::Ipv4Addr(10, 200, 0, 1), kBackends, 65536});
      apps.push_back(a.get());
      return std::unique_ptr<shm::NfApp>(std::move(a));
    };
  } else if (opt.nf == "ips") {
    add_space(nf::IpsApp::space());
    factory = [&] {
      auto a = std::make_unique<nf::IpsApp>(nf::IpsApp::Config{});
      apps.push_back(a.get());
      return std::unique_ptr<shm::NfApp>(std::move(a));
    };
  } else if (opt.nf == "ddos") {
    add_space(nf::DdosDetectorApp::sketch_space());
    add_space(nf::DdosDetectorApp::total_space());
    factory = [&] {
      auto a = std::make_unique<nf::DdosDetectorApp>(nf::DdosDetectorApp::Config{});
      apps.push_back(a.get());
      return std::unique_ptr<shm::NfApp>(std::move(a));
    };
  } else if (opt.nf == "ratelimiter") {
    add_space(nf::RateLimiterApp::space());
    add_space(nf::RateLimiterApp::subnet_space());  // sparse LPM budgets
    factory = [&] {
      auto a = std::make_unique<nf::RateLimiterApp>(nf::RateLimiterApp::Config{});
      apps.push_back(a.get());
      return std::unique_ptr<shm::NfApp>(std::move(a));
    };
  } else if (opt.nf != "none") {
    usage(argv[0]);
  }
  for (const auto& ov : opt.space_overrides) {
    if (std::find(declared_spaces.begin(), declared_spaces.end(), ov.name) ==
        declared_spaces.end()) {
      std::cerr << "warning: --space " << ov.name << " matches no declared space\n";
    }
  }
  try {
    fabric.install(factory);
    fabric.start();
  } catch (const std::invalid_argument& e) {
    // An unsupported space configuration (e.g. a sparse G-counter space) is
    // a usage error, not a crash.
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }

  std::unique_ptr<pkt::PcapWriter> pcap;
  if (!opt.pcap.empty()) {
    pcap = std::make_unique<pkt::PcapWriter>(opt.pcap);
    fabric.network().set_tap(
        [&pcap](NodeId, NodeId, const pkt::Packet& p, TimeNs t) { pcap->write(t, p); });
  }

  // One MeasuringSink per shard: delivery sinks run on the switch's shard, so
  // each shard accumulates into its own sink and the report merges them (at
  // one shard this is exactly the legacy single sink).
  sim::ShardSet& shard_set = fabric.shard_set();
  std::vector<std::unique_ptr<workload::MeasuringSink>> sinks;
  for (std::size_t k = 0; k < shard_set.count(); ++k) {
    sinks.push_back(std::make_unique<workload::MeasuringSink>(shard_set.sim(k)));
  }
  workload::TrafficConfig traffic;
  traffic.flows_per_sec = opt.flows_per_sec;
  traffic.mean_packets_per_flow = opt.packets_per_flow;
  traffic.reroute_probability = opt.reroute;
  traffic.server_ip = server_ip;
  traffic.seed = opt.seed + 1;
  workload::TrafficGenerator gen(fabric, traffic);
  // Liveness for ingress steering in sharded runs: a pure function of the
  // kill/revive schedule and shard 0's clock — the generators must not read
  // another shard's alive flags.
  std::function<bool(std::size_t)> oracle;
  if (shard_set.count() > 1) {
    oracle = [kills = opt.kills, revives = opt.revives, &fabric](std::size_t i) {
      const TimeNs now = fabric.simulator().now();
      TimeNs killed = -1;
      TimeNs revived = -1;
      for (const auto& [idx, at] : kills) {
        if (idx == i && at <= now) killed = std::max(killed, at);
      }
      for (const auto& [idx, at] : revives) {
        if (idx == i && at <= now) revived = std::max(revived, at);
      }
      return killed < 0 || revived >= killed;
    };
  }
  if (shard_set.count() == 1) {
    workload::MeasuringSink& sink = *sinks[0];
    fabric.set_delivery_sink([&sink, &gen](const pkt::Packet& p) {
      sink.observe(p);
      auto parsed = p.parse();
      if (!parsed) return;
      if (auto stamp = workload::Stamp::decode(p.l4_payload(*parsed))) {
        gen.notify_delivered(*stamp);
      }
    });
  } else {
    // Sharded: observe locally; the generator lives on shard 0, so SYN-gate
    // notifications from other shards hop home through the inbox lanes.
    for (std::size_t i = 0; i < fabric.size(); ++i) {
      const std::size_t sh = fabric.shard_of_switch(i);
      workload::MeasuringSink* sink = sinks[sh].get();
      fabric.sw(i).set_delivery_sink([sink, sh, &shard_set, &gen](const pkt::Packet& p) {
        sink->observe(p);
        auto parsed = p.parse();
        if (!parsed) return;
        if (auto stamp = workload::Stamp::decode(p.l4_payload(*parsed))) {
          if (sh == 0) {
            gen.notify_delivered(*stamp);
          } else {
            shard_set.post_at_shard(0, shard_set.sim(sh).now() + shard_set.lookahead(),
                                    [&gen, st = *stamp]() { gen.notify_delivered(st); });
          }
        }
      });
    }
    gen.set_liveness_oracle(oracle);
  }
  gen.start(opt.duration);

  std::unique_ptr<workload::AttackGenerator> attacker;
  if (opt.attack) {
    workload::AttackConfig acfg;
    acfg.packets_per_sec = static_cast<double>((*opt.attack)[0]);
    acfg.start = static_cast<TimeNs>((*opt.attack)[1]) * kMs;
    acfg.duration = static_cast<TimeNs>((*opt.attack)[2]) * kMs;
    attacker = std::make_unique<workload::AttackGenerator>(fabric, acfg);
    if (oracle) attacker->set_liveness_oracle(oracle);
    attacker->start();
  }

  // Fail/revive on the owning shards (at one shard: the same schedule_at
  // calls, in the same order, on the same simulator as the legacy inline
  // lambdas — byte-identical event numbering).
  for (const auto& [idx, at] : opt.kills) fabric.schedule_kill(idx, at);
  for (const auto& [idx, at] : opt.revives) fabric.schedule_revive(idx, at);

  telemetry::TimeSeriesSampler sampler;
  sim::TimerHandle sampler_timer;
  if (!opt.timeseries.empty()) {
    sampler_timer = fabric.simulator().schedule_periodic(opt.timeseries_period, [&]() {
      sampler.sample(fabric.simulator().now(), fabric.simulator().metrics());
    });
  }

  fabric.run_for(opt.duration + 500 * kMs);  // traffic + settling

  // Fleet-health collector: gathers the canonical INT sink reports, drop
  // forensics, and the observatory's per-class lag histograms, then publishes
  // the scorecard into shard 0's registry BEFORE the single snapshot below so
  // --metrics-json carries the health.* subtree too.
  std::unique_ptr<telemetry::HealthCollector> health;
  if (opt.int_sample > 0 || !opt.health_json.empty()) {
    health = std::make_unique<telemetry::HealthCollector>();
    health->ingest_reports(fabric.all_int_reports());
    health->ingest_drops(fabric.all_drop_records(), fabric.all_drop_counts());
    health->ingest_lag(fabric.metrics_snapshot());
    health->finalize();
    health->publish(fabric.simulator().metrics());
  }

  // One snapshot feeds the exit tables and --metrics-json, so the report and
  // the exported file can never disagree. Sharded runs merge per-shard
  // registries deterministically; one shard is exactly the legacy snapshot.
  const telemetry::MetricsSnapshot snap = fabric.metrics_snapshot();

  std::uint64_t delivered_total = 0;
  Histogram delivery_latency;
  for (const auto& s : sinks) {
    delivered_total += s->delivered();
    delivery_latency.merge(s->latency());
  }

  // With `--metrics-json -` the JSON owns stdout: the human report moves to
  // stderr so piped consumers parse pure JSON.
  std::ostream& rep = opt.metrics_json == "-" ? std::cerr : std::cout;

  // ---- Report ---------------------------------------------------------------
  rep << "scenario: nf=" << opt.nf << " switches=" << opt.switches << " topology="
            << opt.topology << " loss=" << opt.loss << " duration=" << opt.duration / 1000000
            << "ms\n\n";
  rep << "workload: " << gen.stats().flows_started << " flows, "
            << gen.stats().packets_sent << " packets, " << gen.stats().reroutes
            << " reroutes\n";
  rep << "delivered: " << delivered_total << " packets, p50 latency "
            << delivery_latency.p50() / 1000.0 << " us, p99 " << delivery_latency.p99() / 1000.0
            << " us\n";
  if (attacker) rep << "attack packets: " << attacker->stats().packets_sent << "\n";
  if (shard_set.count() > 1) {
    rep << "shards: " << shard_set.count() << ", lookahead " << shard_set.lookahead()
        << " ns, " << shard_set.windows() << " sync windows, " << shard_set.cross_events()
        << " cross-shard events\n";
  }

  // Per-protocol membership summary: the controller's detection/repair
  // histograms plus the protocol's own traffic counters, all read from the
  // same snapshot the JSON export uses.
  {
    std::uint64_t failures = 0;
    Histogram detection;
    Histogram repair;
    std::map<std::string, std::uint64_t> swim;  // membership.sw<N>.<metric>, summed over N
    std::uint64_t control_bytes = 0;
    const std::string ctl_suffix = ".bytes_control";
    for (const auto& [name, value] : snap.values) {
      if (name == "membership.failures_detected") {
        failures = value.count;
      } else if (name == "failover.detection_ns") {
        detection = value.hist;
      } else if (name == "failover.repair_ns") {
        repair = value.hist;
      } else if (name.rfind("membership.sw", 0) == 0) {
        const auto dot = name.find('.', std::strlen("membership.sw"));
        if (dot != std::string::npos) swim[name.substr(dot + 1)] += value.count;
      } else if (name.rfind("shm.sw", 0) == 0 && name.size() > ctl_suffix.size() &&
                 name.compare(name.size() - ctl_suffix.size(), ctl_suffix.size(), ctl_suffix) ==
                     0) {
        control_bytes += value.count;
      }
    }
    rep << "membership: protocol=" << shm::to_string(membership) << ", failures detected "
        << failures;
    if (failures > 0) {
      rep << ", detection p50/p99 " << format_double(detection.p50() / 1e6, 2) << "/"
          << format_double(detection.p99() / 1e6, 2) << " ms, repair p50/p99 "
          << format_double(repair.p50() / 1e6, 2) << "/"
          << format_double(repair.p99() / 1e6, 2) << " ms";
    }
    rep << ", control bytes " << control_bytes << "\n";
    if (membership == shm::MembershipProtocol::kSwim) {
      rep << "swim: pings " << swim["pings_sent"] << ", acks " << swim["acks_sent"]
          << ", ping-reqs " << swim["ping_reqs_sent"] << ", suspicions " << swim["suspicions"]
          << ", refutations " << swim["refutations"] << ", faults declared "
          << swim["faults_declared"] << ", updates " << swim["updates_sent"] << "\n";
    }
  }
  if (health) {
    rep << "health: " << health->int_reports() << " INT reports ("
        << health->int_truncated() << " truncated), " << health->drops_total()
        << " drops mirrored (" << health->drops_attributed() << " attributed), "
        << health->anomalies().size() << " anomalies\n";
  }
  rep << "\n";

  if (!opt.quiet) {
    TextTable table("per-switch protocol activity");
    table.header({"switch", "alive", "processed", "writes committed", "write p99 (us)",
                  "reads local", "reads redirected", "EWO updates rx", "CP backlog drops"});
    for (std::size_t i = 0; i < fabric.size(); ++i) {
      const auto& st = fabric.runtime(i).stats();
      table.row({std::to_string(i), fabric.sw(i).alive() ? "yes" : "no",
                 std::to_string(fabric.sw(i).stats().processed),
                 std::to_string(st.writes_committed),
                 format_double(st.write_latency.p99() / 1000.0, 1),
                 std::to_string(st.reads_local), std::to_string(st.reads_redirected),
                 std::to_string(st.ewo_updates_received),
                 std::to_string(fabric.sw(i).control_plane().stats().dropped)});
    }
    table.print(rep);

    // Per-engine protocol counters, aggregated across the fabric straight
    // from the metrics registry (names shm.sw<N>.<engine>.<metric>). Counter
    // rows are sums; histogram rows report fabric-wide merged percentiles.
    struct EngineAgg {
      std::map<std::string, std::uint64_t> counters;
      std::map<std::string, Histogram> hists;
    };
    std::map<std::string, EngineAgg> engines;
    for (const auto& [name, value] : snap.values) {
      if (name.rfind("shm.sw", 0) != 0) continue;
      const auto d1 = name.find('.', 6);
      const auto d2 = d1 == std::string::npos ? std::string::npos : name.find('.', d1 + 1);
      if (d2 == std::string::npos) continue;  // runtime-level counter, no engine segment
      const std::string engine = name.substr(d1 + 1, d2 - d1 - 1);
      if (engine != "sro" && engine != "ero" && engine != "ewo" && engine != "own" &&
          engine != "con") {
        continue;
      }
      const std::string metric = name.substr(d2 + 1);
      EngineAgg& agg = engines[engine];
      if (value.kind == telemetry::MetricKind::kHistogram) {
        agg.hists[metric].merge(value.hist);
      } else {
        agg.counters[metric] += value.count;
      }
    }
    if (!engines.empty()) {
      rep << "\n";
      TextTable engine_table("per-engine protocol counters (fabric-wide)");
      engine_table.header({"engine", "counter", "value"});
      for (const auto& [name, agg] : engines) {
        for (const auto& [metric, total] : agg.counters) {
          engine_table.row({name, metric, std::to_string(total)});
        }
        for (const auto& [metric, hist] : agg.hists) {
          engine_table.row({name, metric + " (p50)", std::to_string(hist.p50())});
          engine_table.row({name, metric + " (p99)", std::to_string(hist.p99())});
        }
      }
      engine_table.print(rep);
    }

    const auto net_stats = fabric.network().total_stats();
    rep << "\nfabric links: " << net_stats.packets_sent << " packets, "
              << net_stats.bytes_sent << " bytes, " << net_stats.packets_dropped_loss
              << " lost, " << net_stats.packets_dropped_queue << " queue-dropped, "
              << net_stats.packets_dropped_dead << " dead-dropped\n";

    if (health) {
      rep << "\n";
      health->print_report(rep);
    }

    if (opt.span_sample > 0) {
      const std::vector<telemetry::Span> spans = fabric.all_spans();
      std::uint64_t roots = 0;
      std::uint64_t dropped = 0;
      for (std::size_t k = 0; k < shard_set.count(); ++k) {
        roots += shard_set.sim(k).spans().root_decisions();
        dropped += shard_set.sim(k).spans().dropped();
      }
      rep << "\ncausal tracing: " << spans.size() << " spans, 1-in-"
                << opt.span_sample << " sampling over " << roots
                << " roots, " << dropped << " dropped\n\n";
      telemetry::print_trace_summaries(
          rep, telemetry::top_slowest(telemetry::stitch_traces(spans), opt.top_slowest));
    }
  }
  if (pcap) {
    pcap->flush();
    rep << "pcap: wrote " << pcap->packets_written() << " packets to " << opt.pcap << "\n";
  }
  if (!opt.perfetto.empty()) {
    std::ofstream out(opt.perfetto);
    if (!out) {
      std::cerr << "error: cannot open " << opt.perfetto << " for writing\n";
      return 1;
    }
    std::map<NodeId, std::string> node_names;
    for (std::size_t i = 0; i < fabric.size(); ++i) {
      node_names[fabric.sw(i).id()] = "sw" + std::to_string(i);
    }
    const std::vector<telemetry::Span> spans = fabric.all_spans();
    if (health) {
      // Queue-depth counter tracks from the INT hop records ride in the same
      // file; analyze's span parser skips them.
      telemetry::write_perfetto(out, spans, health->counter_samples(), node_names);
    } else {
      telemetry::write_perfetto(out, spans, node_names);
    }
    rep << "perfetto: wrote " << spans.size() << " spans to " << opt.perfetto << "\n";
  }
  if (!opt.timeseries.empty()) {
    std::ofstream out(opt.timeseries);
    if (!out) {
      std::cerr << "error: cannot open " << opt.timeseries << " for writing\n";
      return 1;
    }
    sampler.write_csv(out);
    rep << "timeseries: wrote " << sampler.size() << " samples to " << opt.timeseries
              << "\n";
  }
  if (!opt.health_json.empty()) {
    if (opt.health_json == "-") {
      std::cout << health->to_json();
    } else {
      std::ofstream out(opt.health_json);
      if (!out) {
        std::cerr << "error: cannot open " << opt.health_json << " for writing\n";
        return 1;
      }
      out << health->to_json();
      rep << "health: wrote scorecard (" << health->anomalies().size() << " anomalies) to "
          << opt.health_json << "\n";
    }
  }
  if (!opt.drops_json.empty()) {
    const std::vector<telemetry::DropRecord> records = fabric.all_drop_records();
    if (opt.drops_json == "-") {
      telemetry::write_drop_forensics(std::cout, records);
    } else {
      std::ofstream out(opt.drops_json);
      if (!out) {
        std::cerr << "error: cannot open " << opt.drops_json << " for writing\n";
        return 1;
      }
      telemetry::write_drop_forensics(out, records);
      rep << "drops: wrote " << records.size() << " forensic records to " << opt.drops_json
          << "\n";
    }
  }
  if (!opt.metrics_json.empty()) {
    if (opt.metrics_json == "-") {
      std::cout << snap.to_json();
    } else {
      std::ofstream out(opt.metrics_json);
      if (!out) {
        std::cerr << "error: cannot open " << opt.metrics_json << " for writing\n";
        return 1;
      }
      out << snap.to_json();
      rep << "metrics: wrote " << snap.values.size() << " metrics to "
                << opt.metrics_json << "\n";
    }
  }
  if (!opt.trace.empty()) {
    std::ofstream out(opt.trace);
    if (!out) {
      std::cerr << "error: cannot open " << opt.trace << " for writing\n";
      return 1;
    }
    const telemetry::Tracer& tracer = fabric.simulator().tracer();
    tracer.dump(out);
    rep << "trace: wrote " << tracer.size() << " events (" << tracer.recorded()
              << " recorded, mask " << telemetry::trace_mask_to_string(tracer.mask())
              << ") to " << opt.trace << "\n";
  }
  return 0;
}
