#!/usr/bin/env bash
# Builds the benches in Release and emits BENCH_*.json artifacts at the repo
# root. The throughput bench embeds the committed seed baseline so the
# artifact carries its own before/after comparison (see DESIGN.md,
# "Data-path performance model").
#
#   tools/run_benches.sh [--sim-ms N] [--sweep-sim-ms N] [--sweep-shards LIST]
set -euo pipefail

SIM_MS=""  # default: read from bench/baseline_throughput.json's params.sim_ms
SWEEP_SIM_MS=10
SWEEP_SHARDS=1,2,4,8
while [[ $# -gt 0 ]]; do
  case "$1" in
    --sim-ms) SIM_MS="$2"; shift 2 ;;
    --sweep-sim-ms) SWEEP_SIM_MS="$2"; shift 2 ;;
    --sweep-shards) SWEEP_SHARDS="$2"; shift 2 ;;
    *) echo "usage: $0 [--sim-ms N] [--sweep-sim-ms N] [--sweep-shards LIST]" >&2; exit 2 ;;
  esac
done

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="$ROOT/build-release"

# The before/after comparison embedded in BENCH_throughput.json is only
# meaningful when the run simulates the same wall-clock span as the committed
# baseline, so derive SIM_MS from the baseline instead of hardcoding it — and
# refuse an explicit --sim-ms that disagrees rather than silently comparing
# apples to oranges.
BASELINE_SIM_MS="$(sed -n 's/^[[:space:]]*"sim_ms":[[:space:]]*\([0-9][0-9]*\).*/\1/p' \
  "$ROOT/bench/baseline_throughput.json" | head -n 1)"
if [[ -z "$BASELINE_SIM_MS" ]]; then
  echo "error: cannot read params.sim_ms from bench/baseline_throughput.json" >&2
  exit 1
fi
if [[ -z "$SIM_MS" ]]; then
  SIM_MS="$BASELINE_SIM_MS"
elif [[ "$SIM_MS" != "$BASELINE_SIM_MS" ]]; then
  echo "error: --sim-ms $SIM_MS does not match the committed baseline's" \
       "params.sim_ms ($BASELINE_SIM_MS); the embedded before/after comparison" \
       "would be meaningless. Re-baseline or drop --sim-ms." >&2
  exit 1
fi

cmake -B "$BUILD" -S "$ROOT" -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build "$BUILD" -j "$(nproc)" --target bench_throughput bench_micro_primitives >/dev/null

COMMIT="$(git -C "$ROOT" rev-parse --short HEAD 2>/dev/null || echo unknown)"

"$BUILD/bench/bench_throughput" \
  --sim-ms "$SIM_MS" \
  --commit "$COMMIT" \
  --baseline "$ROOT/bench/baseline_throughput.json" \
  --out "$ROOT/BENCH_throughput.json"

# Shard-scaling sweep on the 16-leaf x 4-spine fabric: one run entry per
# shard count, with scaling_efficiency (pps@N / (N x pps@1)) relative to the
# sweep's own 1-shard run. Appends to the same schema-2 artifact.
echo
"$BUILD/bench/bench_throughput" \
  --leaves 16 --spines 4 \
  --sim-ms "$SWEEP_SIM_MS" \
  --sweep-shards "$SWEEP_SHARDS" \
  --label "shard-sweep" \
  --commit "$COMMIT" \
  --baseline "$ROOT/bench/baseline_throughput.json" \
  --out "$ROOT/BENCH_throughput.json"

# Telemetry overhead gate: with the span recorder enabled but (almost) never
# sampling, AND with INT-MD telemetry sampling 1-in-64 packets, throughput
# must stay within 2% of the telemetry-off path.
echo
"$BUILD/bench/bench_throughput" --sim-ms "$SIM_MS" --overhead-gate 2

"$BUILD/bench/bench_micro_primitives" \
  --benchmark_format=console \
  --benchmark_out_format=json \
  --benchmark_out="$ROOT/BENCH_micro_primitives.json"

# Failover timelines with detection and repair reported separately, and the
# C13 membership-protocol comparison (heartbeat vs SWIM).
cmake --build "$BUILD" -j "$(nproc)" \
  --target bench_c7_failover bench_c8_ewo_failover bench_c13_membership >/dev/null
echo
"$BUILD/bench/bench_c7_failover" --out "$ROOT/BENCH_failover_sro.json"
echo
"$BUILD/bench/bench_c8_ewo_failover" --out "$ROOT/BENCH_failover_ewo.json"
echo
"$BUILD/bench/bench_c13_membership" --out "$ROOT/BENCH_membership.json"

echo
echo "artifacts:"
ls -l "$ROOT"/BENCH_*.json
